//! A TDMD problem instance and its precomputed indices.

use crate::error::TdmdError;
use serde::{Deserialize, Serialize};
use tdmd_graph::{DiGraph, NodeId};
use tdmd_traffic::Flow;

/// A complete TDMD problem: topology, flows, traffic-changing ratio
/// `λ` and the middlebox budget `k` (Eq. 3).
///
/// Construction precomputes, for every vertex `v`, the list of flows
/// whose path crosses `v` together with the downstream hop count
/// `l_v(f)` — the quantity every algorithm scores with. The index is
/// one flat CSR arena (`flow_offsets` slicing `flow_entries`) rather
/// than a `Vec` per vertex: a single allocation, and the greedy inner
/// loops scan contiguous memory.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Instance {
    graph: DiGraph,
    flows: Vec<Flow>,
    lambda: f64,
    k: usize,
    /// CSR row offsets, length `node_count + 1`: vertex `v`'s flows
    /// live at `flow_entries[flow_offsets[v] .. flow_offsets[v + 1]]`.
    flow_offsets: Vec<u32>,
    /// `(flow index, l_v(f))` entries grouped by vertex, where
    /// `l_v(f)` counts the path edges downstream of `v`. Within a
    /// vertex, entries are in ascending flow-id order.
    flow_entries: Vec<(u32, u32)>,
}

impl Instance {
    /// Builds and validates an instance.
    ///
    /// # Errors
    /// * [`TdmdError::BadLambda`] if `λ ∉ [0, 1]`.
    /// * [`TdmdError::InvalidPath`] if a flow path uses a missing edge
    ///   or the flow carries no traffic (zero rate) — the tree DP's
    ///   coverage accounting requires strictly positive rates, as in
    ///   the paper.
    pub fn new(graph: DiGraph, flows: Vec<Flow>, lambda: f64, k: usize) -> Result<Self, TdmdError> {
        if !(0.0..=1.0).contains(&lambda) || lambda.is_nan() {
            return Err(TdmdError::BadLambda(lambda));
        }
        for (idx, f) in flows.iter().enumerate() {
            if !f.path_is_valid(&graph) || f.rate == 0 {
                return Err(TdmdError::InvalidPath { flow: f.id });
            }
            // Flow ids double as dense indices into per-flow state
            // everywhere downstream; enforce it here once.
            if f.id as usize != idx {
                return Err(TdmdError::InvalidPath { flow: f.id });
            }
        }
        // CSR build: count each vertex's row, prefix-sum into offsets,
        // then fill with per-vertex write cursors. Walking flows in id
        // order keeps every row sorted by flow id, like the nested
        // Vec index this replaces.
        let n = graph.node_count();
        let mut flow_offsets = vec![0u32; n + 1];
        for f in &flows {
            for &v in &f.path {
                flow_offsets[v as usize + 1] += 1;
            }
        }
        for i in 1..=n {
            flow_offsets[i] += flow_offsets[i - 1];
        }
        let mut cursor: Vec<u32> = flow_offsets[..n].to_vec();
        let mut flow_entries = vec![(0u32, 0u32); flow_offsets[n] as usize];
        for (idx, f) in flows.iter().enumerate() {
            let hops = f.hops() as u32;
            for (pos, &v) in f.path.iter().enumerate() {
                let slot = &mut cursor[v as usize];
                flow_entries[*slot as usize] = (idx as u32, hops - pos as u32);
                *slot += 1;
            }
        }
        Ok(Self {
            graph,
            flows,
            lambda,
            k,
            flow_offsets,
            flow_entries,
        })
    }

    /// The topology.
    #[inline]
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The flows.
    #[inline]
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Traffic-changing ratio `λ`.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Middlebox budget `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Returns a copy with a different budget (used by sweeps).
    pub fn with_k(&self, k: usize) -> Self {
        let mut c = self.clone();
        c.k = k;
        c
    }

    /// Returns a copy with a different `λ`.
    ///
    /// # Panics
    /// Panics if `λ ∉ [0, 1]` (sweeps pass vetted values).
    pub fn with_lambda(&self, lambda: f64) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "lambda out of range");
        let mut c = self.clone();
        c.lambda = lambda;
        c
    }

    /// Flows crossing `v` as `(flow index, l_v(f))` pairs.
    #[inline]
    pub fn flows_through(&self, v: NodeId) -> &[(u32, u32)] {
        let lo = self.flow_offsets[v as usize] as usize;
        let hi = self.flow_offsets[v as usize + 1] as usize;
        &self.flow_entries[lo..hi]
    }

    /// Number of vertices in the topology.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Sum of `r_f · |p_f|` — the unprocessed total bandwidth, i.e.
    /// `b(∅)` and the `d` offset of Lemma 1.
    pub fn unprocessed_bandwidth(&self) -> f64 {
        self.flows
            .iter()
            .map(|f| f.unprocessed_bandwidth() as f64)
            .sum()
    }

    /// Vertices that lie on at least one flow path — the only useful
    /// middlebox locations.
    pub fn candidate_vertices(&self) -> Vec<NodeId> {
        (0..self.node_count() as NodeId)
            .filter(|&v| self.flow_offsets[v as usize] < self.flow_offsets[v as usize + 1])
            .collect()
    }
}

/// Raw CSR access for the structural auditor and its corruption tests.
#[cfg(any(debug_assertions, feature = "audit", test))]
impl Instance {
    /// The raw CSR arena `(flow_offsets, flow_entries)` for
    /// [`crate::audit::check_instance`].
    pub fn audit_csr(&self) -> (&[u32], &[(u32, u32)]) {
        (&self.flow_offsets, &self.flow_entries)
    }

    /// Mutable CSR access — a corruption hook for audit tests only.
    /// Breaking the invariants here puts every algorithm off spec;
    /// the only legitimate use is seeding violations that
    /// [`crate::audit::check_instance`] must catch.
    pub fn audit_csr_mut(&mut self) -> (&mut Vec<u32>, &mut Vec<(u32, u32)>) {
        (&mut self.flow_offsets, &mut self.flow_entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdmd_graph::GraphBuilder;

    fn line_instance(lambda: f64, k: usize) -> Result<Instance, TdmdError> {
        let mut b = GraphBuilder::new(4);
        for i in 0..3 {
            b.add_bidirectional(i, i + 1);
        }
        let g = b.build();
        let flows = vec![
            Flow::new(0, 4, vec![3, 2, 1, 0]),
            Flow::new(1, 2, vec![2, 1, 0]),
        ];
        Instance::new(g, flows, lambda, k)
    }

    #[test]
    fn valid_instance_builds() {
        let inst = line_instance(0.5, 2).unwrap();
        assert_eq!(inst.lambda(), 0.5);
        assert_eq!(inst.k(), 2);
        assert_eq!(inst.flows().len(), 2);
        assert_eq!(inst.unprocessed_bandwidth(), (4 * 3 + 2 * 2) as f64);
    }

    #[test]
    fn vertex_flow_index_has_downstream_hops() {
        let inst = line_instance(0.5, 2).unwrap();
        // Vertex 3 is f0's source: l = 3. Vertex 0 is everyone's dst: l = 0.
        assert_eq!(inst.flows_through(3), &[(0, 3)]);
        let mut at0 = inst.flows_through(0).to_vec();
        at0.sort_unstable();
        assert_eq!(at0, vec![(0, 0), (1, 0)]);
        // Vertex 2 carries f0 (l=2) and f1 (l=2).
        let mut at2 = inst.flows_through(2).to_vec();
        at2.sort_unstable();
        assert_eq!(at2, vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn bad_lambda_rejected() {
        assert_eq!(
            line_instance(1.5, 2).unwrap_err(),
            TdmdError::BadLambda(1.5)
        );
        assert_eq!(
            line_instance(-0.1, 2).unwrap_err(),
            TdmdError::BadLambda(-0.1)
        );
        assert!(line_instance(f64::NAN, 2).is_err());
    }

    #[test]
    fn boundary_lambdas_accepted() {
        assert!(line_instance(0.0, 2).is_ok(), "spam filter");
        assert!(line_instance(1.0, 2).is_ok(), "traffic-neutral");
    }

    #[test]
    fn invalid_path_rejected() {
        let g = GraphBuilder::new(3).build();
        let flows = vec![Flow::new(0, 1, vec![0, 1])];
        assert_eq!(
            Instance::new(g, flows, 0.5, 1).unwrap_err(),
            TdmdError::InvalidPath { flow: 0 }
        );
    }

    #[test]
    fn candidate_vertices_excludes_off_path_nodes() {
        let mut b = GraphBuilder::new(5);
        for i in 0..3 {
            b.add_bidirectional(i, i + 1);
        }
        b.add_bidirectional(0, 4); // vertex 4 carries no flow
        let g = b.build();
        let flows = vec![Flow::new(0, 1, vec![3, 2, 1, 0])];
        let inst = Instance::new(g, flows, 0.5, 1).unwrap();
        assert_eq!(inst.candidate_vertices(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn with_k_and_with_lambda_copy() {
        let inst = line_instance(0.5, 2).unwrap();
        assert_eq!(inst.with_k(7).k(), 7);
        assert_eq!(inst.with_lambda(0.0).lambda(), 0.0);
        assert_eq!(inst.k(), 2, "original untouched");
    }
}
