//! A TDMD problem instance and its precomputed indices.

use crate::error::TdmdError;
use serde::{Deserialize, Serialize};
use tdmd_graph::{DiGraph, NodeId};
use tdmd_traffic::{Flow, FlowPaths};

/// A complete TDMD problem: topology, flows, traffic-changing ratio
/// `λ` and the middlebox budget `k` (Eq. 3).
///
/// Every flow carries a *candidate path set* ([`PathSets`]) with one
/// **active** path — the paper's fixed-path model is the singleton
/// case, which [`Instance::new`] constructs (one candidate per flow,
/// always active), preserving the legacy index bit for bit.
///
/// Construction precomputes two CSR arenas:
///
/// * the **active index** — for every vertex `v`, the flows whose
///   active path crosses `v` with the downstream hop count `l_v(f)`
///   (the quantity every placement algorithm scores with). One flat
///   arena (`flow_offsets` slicing `flow_entries`): a single
///   allocation, and the greedy inner loops scan contiguous memory.
/// * the **candidate index** — the two-level CSR of [`PathSets`]:
///   vertex → `(flow, candidate, l)` memberships over *all* candidate
///   paths, which the joint routing + placement solver scans to price
///   path switches without re-walking candidate lists.
///
/// [`Instance::set_active_paths`] switches active paths in a batch
/// and rebuilds the active index once, so fixed-path algorithms keep
/// operating on plain `flows_through` rows under re-routing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Instance {
    graph: DiGraph,
    flows: Vec<Flow>,
    lambda: f64,
    k: usize,
    /// CSR row offsets, length `node_count + 1`: vertex `v`'s flows
    /// live at `flow_entries[flow_offsets[v] .. flow_offsets[v + 1]]`.
    flow_offsets: Vec<u32>,
    /// `(flow index, l_v(f))` entries grouped by vertex, where
    /// `l_v(f)` counts the path edges downstream of `v`. Within a
    /// vertex, entries are in ascending flow-id order.
    flow_entries: Vec<(u32, u32)>,
    /// Candidate path sets with the active-path selection.
    paths: PathSets,
}

/// Builds the active-path CSR exactly as the legacy single-path
/// constructor did: count each vertex's row, prefix-sum into offsets,
/// fill with per-vertex write cursors. Walking flows in id order
/// keeps every row sorted by flow id.
fn build_active_csr(n: usize, flows: &[Flow]) -> (Vec<u32>, Vec<(u32, u32)>) {
    let mut flow_offsets = vec![0u32; n + 1];
    for f in flows {
        for &v in &f.path {
            flow_offsets[v as usize + 1] += 1;
        }
    }
    for i in 1..=n {
        flow_offsets[i] += flow_offsets[i - 1];
    }
    let mut cursor: Vec<u32> = flow_offsets[..n].to_vec();
    let mut flow_entries = vec![(0u32, 0u32); flow_offsets[n] as usize];
    for (idx, f) in flows.iter().enumerate() {
        let hops = f.hops() as u32;
        for (pos, &v) in f.path.iter().enumerate() {
            let slot = &mut cursor[v as usize];
            flow_entries[*slot as usize] = (idx as u32, hops - pos as u32);
            *slot += 1;
        }
    }
    (flow_offsets, flow_entries)
}

/// Validates one candidate path of flow `flow` against the topology.
fn validate_path(graph: &DiGraph, flow: u32, path: &[NodeId]) -> Result<(), TdmdError> {
    let err = || TdmdError::InvalidPath { flow };
    if path.len() < 2 {
        return Err(err());
    }
    let mut seen = path.to_vec();
    seen.sort_unstable();
    if seen.windows(2).any(|w| w[0] == w[1]) {
        return Err(err());
    }
    if path.windows(2).any(|w| !graph.has_edge(w[0], w[1])) {
        return Err(err());
    }
    Ok(())
}

impl Instance {
    /// Builds and validates a fixed-path (singleton candidate set)
    /// instance — the paper's original model.
    ///
    /// # Errors
    /// * [`TdmdError::BadLambda`] if `λ ∉ [0, 1]`.
    /// * [`TdmdError::InvalidPath`] if a flow path uses a missing edge
    ///   or the flow carries no traffic (zero rate) — the tree DP's
    ///   coverage accounting requires strictly positive rates, as in
    ///   the paper.
    pub fn new(graph: DiGraph, flows: Vec<Flow>, lambda: f64, k: usize) -> Result<Self, TdmdError> {
        if !(0.0..=1.0).contains(&lambda) || lambda.is_nan() {
            return Err(TdmdError::BadLambda(lambda));
        }
        for (idx, f) in flows.iter().enumerate() {
            if !f.path_is_valid(&graph) || f.rate == 0 {
                return Err(TdmdError::InvalidPath { flow: f.id });
            }
            // Flow ids double as dense indices into per-flow state
            // everywhere downstream; enforce it here once.
            if f.id as usize != idx {
                return Err(TdmdError::InvalidPath { flow: f.id });
            }
        }
        let n = graph.node_count();
        let (flow_offsets, flow_entries) = build_active_csr(n, &flows);
        let paths = PathSets::singletons(n, &flows);
        Ok(Self {
            graph,
            flows,
            lambda,
            k,
            flow_offsets,
            flow_entries,
            paths,
        })
    }

    /// Builds an instance from candidate path sets: each flow's
    /// primary (index-0) candidate starts active, so a fixed-path
    /// solver run on the result equals a run on the primaries.
    ///
    /// # Errors
    /// * [`TdmdError::BadLambda`] if `λ ∉ [0, 1]`.
    /// * [`TdmdError::InvalidPath`] if a flow has a zero rate, a
    ///   non-dense id, an empty candidate list, or any candidate that
    ///   is degenerate, non-simple, uses a missing edge, or does not
    ///   connect the primary's `(src, dst)`.
    pub fn with_path_sets(
        graph: DiGraph,
        sets: Vec<FlowPaths>,
        lambda: f64,
        k: usize,
    ) -> Result<Self, TdmdError> {
        if !(0.0..=1.0).contains(&lambda) || lambda.is_nan() {
            return Err(TdmdError::BadLambda(lambda));
        }
        for (idx, s) in sets.iter().enumerate() {
            let err = || TdmdError::InvalidPath { flow: s.id };
            if s.id as usize != idx || s.rate == 0 || s.candidates.is_empty() {
                return Err(err());
            }
            for p in &s.candidates {
                validate_path(&graph, s.id, p)?;
                if p[0] != s.candidates[0][0] || p.last() != s.candidates[0].last() {
                    return Err(err());
                }
            }
        }
        let flows: Vec<Flow> = sets.iter().map(FlowPaths::primary_flow).collect();
        let n = graph.node_count();
        let (flow_offsets, flow_entries) = build_active_csr(n, &flows);
        let paths = PathSets::build(n, &sets);
        Ok(Self {
            graph,
            flows,
            lambda,
            k,
            flow_offsets,
            flow_entries,
            paths,
        })
    }

    /// The topology.
    #[inline]
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The flows, each on its currently active path.
    #[inline]
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Traffic-changing ratio `λ`.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Middlebox budget `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Returns a copy with a different budget (used by sweeps).
    pub fn with_k(&self, k: usize) -> Self {
        let mut c = self.clone();
        c.k = k;
        c
    }

    /// Returns a copy with a different `λ`.
    ///
    /// # Panics
    /// Panics if `λ ∉ [0, 1]` (sweeps pass vetted values).
    pub fn with_lambda(&self, lambda: f64) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "lambda out of range");
        let mut c = self.clone();
        c.lambda = lambda;
        c
    }

    /// Flows whose *active* path crosses `v`, as
    /// `(flow index, l_v(f))` pairs.
    #[inline]
    pub fn flows_through(&self, v: NodeId) -> &[(u32, u32)] {
        let lo = self.flow_offsets[v as usize] as usize;
        let hi = self.flow_offsets[v as usize + 1] as usize;
        &self.flow_entries[lo..hi]
    }

    /// The candidate path sets and their two-level membership index.
    #[inline]
    pub fn path_sets(&self) -> &PathSets {
        &self.paths
    }

    /// Switches the active paths of a batch of flows and rebuilds the
    /// active index once. `switches` holds `(flow index, candidate
    /// index)` pairs; entries equal to the current selection are
    /// no-ops. Returns the number of flows whose route changed.
    ///
    /// # Panics
    /// Panics if a flow or candidate index is out of range (callers
    /// produce switches from [`PathSets`] lookups, so out-of-range
    /// indices are always a logic error).
    pub fn set_active_paths(&mut self, switches: &[(u32, u32)]) -> usize {
        let mut changed = 0usize;
        for &(f, j) in switches {
            let fi = f as usize;
            assert!(fi < self.flows.len(), "flow index {f} out of range");
            assert!(
                (j as usize) < self.paths.candidate_count(fi),
                "candidate index {j} out of range for flow {f}"
            );
            if self.paths.active[fi] == j {
                continue;
            }
            self.paths.active[fi] = j;
            self.flows[fi].path = self.paths.path(fi, j as usize).to_vec();
            changed += 1;
        }
        if changed > 0 {
            let (o, e) = build_active_csr(self.graph.node_count(), &self.flows);
            self.flow_offsets = o;
            self.flow_entries = e;
        }
        changed
    }

    /// Number of vertices in the topology.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Sum of `r_f · |p_f|` over active paths — the unprocessed total
    /// bandwidth, i.e. `b(∅)` and the `d` offset of Lemma 1.
    pub fn unprocessed_bandwidth(&self) -> f64 {
        self.flows
            .iter()
            .map(|f| f.unprocessed_bandwidth() as f64)
            .sum()
    }

    /// Vertices that lie on at least one active flow path — the only
    /// useful middlebox locations for a fixed routing.
    pub fn candidate_vertices(&self) -> Vec<NodeId> {
        (0..self.node_count() as NodeId)
            .filter(|&v| self.flow_offsets[v as usize] < self.flow_offsets[v as usize + 1])
            .collect()
    }
}

/// One vertex-membership record of the candidate index: candidate
/// `path` of flow `flow` crosses the vertex with `l` downstream hops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathMember {
    /// Flow index.
    pub flow: u32,
    /// Candidate index within the flow's set (0 = primary).
    pub path: u32,
    /// Downstream hops `l_v(p)` on that candidate.
    pub l: u32,
}

/// The candidate path sets of an instance, as a two-level CSR.
///
/// Level 1 is the path arena: flow `f`'s candidates are the global
/// path ids `flow_offsets[f] .. flow_offsets[f + 1]`, and global path
/// `p`'s vertices are `path_vertices[path_offsets[p] ..
/// path_offsets[p + 1]]`. Level 2 is the membership index: vertex
/// `v`'s [`PathMember`] records sit at `member_entries[member_offsets
/// [v] .. member_offsets[v + 1]]`, sorted by `(flow, path)`. `active`
/// selects one candidate per flow; [`Instance::flows_through`] is the
/// restriction of this index to the active selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathSets {
    /// Level-1 fence over flows: candidate global ids per flow.
    flow_offsets: Vec<u32>,
    /// Level-1 fence over global paths into `path_vertices`.
    path_offsets: Vec<u32>,
    /// Concatenated candidate paths.
    path_vertices: Vec<NodeId>,
    /// Active candidate index per flow.
    active: Vec<u32>,
    /// Level-2 fence over vertices into `member_entries`.
    member_offsets: Vec<u32>,
    /// Membership records grouped by vertex, sorted by `(flow, path)`.
    member_entries: Vec<PathMember>,
}

impl PathSets {
    /// Builds the two-level CSR from validated candidate sets.
    fn build(n: usize, sets: &[FlowPaths]) -> Self {
        let mut flow_offsets = vec![0u32; sets.len() + 1];
        let total: usize = sets.iter().map(|s| s.candidates.len()).sum();
        let mut path_offsets = Vec::with_capacity(total + 1);
        path_offsets.push(0u32);
        let mut path_vertices = Vec::new();
        let mut member_offsets = vec![0u32; n + 1];
        for (fi, s) in sets.iter().enumerate() {
            flow_offsets[fi + 1] = flow_offsets[fi] + s.candidates.len() as u32;
            for p in &s.candidates {
                path_vertices.extend_from_slice(p);
                path_offsets.push(path_vertices.len() as u32);
                for &v in p {
                    member_offsets[v as usize + 1] += 1;
                }
            }
        }
        for i in 1..=n {
            member_offsets[i] += member_offsets[i - 1];
        }
        let mut cursor: Vec<u32> = member_offsets[..n].to_vec();
        let mut member_entries = vec![
            PathMember {
                flow: 0,
                path: 0,
                l: 0
            };
            member_offsets[n] as usize
        ];
        // Filling in (flow, candidate, position) order keeps every
        // vertex row sorted by (flow, path), same argument as the
        // active CSR's sorted-by-flow rows.
        for (fi, s) in sets.iter().enumerate() {
            for (j, p) in s.candidates.iter().enumerate() {
                let hops = (p.len() - 1) as u32;
                for (pos, &v) in p.iter().enumerate() {
                    let slot = &mut cursor[v as usize];
                    member_entries[*slot as usize] = PathMember {
                        flow: fi as u32,
                        path: j as u32,
                        l: hops - pos as u32,
                    };
                    *slot += 1;
                }
            }
        }
        Self {
            flow_offsets,
            path_offsets,
            path_vertices,
            active: vec![0; sets.len()],
            member_offsets,
            member_entries,
        }
    }

    /// Singleton sets mirroring fixed-path flows.
    fn singletons(n: usize, flows: &[Flow]) -> Self {
        let sets: Vec<FlowPaths> = flows.iter().map(FlowPaths::singleton).collect();
        Self::build(n, &sets)
    }

    /// Number of flows.
    #[inline]
    pub fn flow_count(&self) -> usize {
        self.active.len()
    }

    /// Total number of candidate paths across all flows.
    #[inline]
    pub fn total_paths(&self) -> usize {
        self.path_offsets.len() - 1
    }

    /// Number of candidates of flow `f`.
    #[inline]
    pub fn candidate_count(&self, f: usize) -> usize {
        (self.flow_offsets[f + 1] - self.flow_offsets[f]) as usize
    }

    /// Global path id of flow `f`'s candidate `j`.
    #[inline]
    pub fn global_id(&self, f: usize, j: usize) -> usize {
        self.flow_offsets[f] as usize + j
    }

    /// Vertices of flow `f`'s candidate `j`.
    #[inline]
    pub fn path(&self, f: usize, j: usize) -> &[NodeId] {
        self.path_by_id(self.global_id(f, j))
    }

    /// Vertices of the global path `id`.
    #[inline]
    pub fn path_by_id(&self, id: usize) -> &[NodeId] {
        let lo = self.path_offsets[id] as usize;
        let hi = self.path_offsets[id + 1] as usize;
        &self.path_vertices[lo..hi]
    }

    /// Active candidate index of flow `f`.
    #[inline]
    pub fn active(&self, f: usize) -> u32 {
        self.active[f]
    }

    /// Active candidate indices of every flow.
    #[inline]
    pub fn actives(&self) -> &[u32] {
        &self.active
    }

    /// All candidate-path memberships crossing `v`, sorted by
    /// `(flow, path)`.
    #[inline]
    pub fn memberships_through(&self, v: NodeId) -> &[PathMember] {
        let lo = self.member_offsets[v as usize] as usize;
        let hi = self.member_offsets[v as usize + 1] as usize;
        &self.member_entries[lo..hi]
    }

    /// Fewest hops over flow `f`'s candidates — the routing lower
    /// bound the LP certificate prices against.
    pub fn min_hops(&self, f: usize) -> u32 {
        (0..self.candidate_count(f))
            .map(|j| self.path(f, j).len() as u32 - 1)
            .min()
            .expect("every flow has a candidate")
    }
}

/// Raw CSR access for the structural auditor and its corruption tests.
#[cfg(any(debug_assertions, feature = "audit", test))]
impl Instance {
    /// The raw CSR arena `(flow_offsets, flow_entries)` for
    /// [`crate::audit::check_instance`].
    pub fn audit_csr(&self) -> (&[u32], &[(u32, u32)]) {
        (&self.flow_offsets, &self.flow_entries)
    }

    /// Mutable CSR access — a corruption hook for audit tests only.
    /// Breaking the invariants here puts every algorithm off spec;
    /// the only legitimate use is seeding violations that
    /// [`crate::audit::check_instance`] must catch.
    pub fn audit_csr_mut(&mut self) -> (&mut Vec<u32>, &mut Vec<(u32, u32)>) {
        (&mut self.flow_offsets, &mut self.flow_entries)
    }

    /// Mutable candidate-index access — the corruption hook for the
    /// path-set audit checks.
    pub fn audit_path_sets_mut(&mut self) -> &mut PathSets {
        &mut self.paths
    }
}

/// Raw arena access for audit corruption tests.
#[cfg(any(debug_assertions, feature = "audit", test))]
impl PathSets {
    /// Mutable access to `(active, member_entries, path_vertices)`,
    /// for seeding violations the auditor must catch.
    pub fn audit_parts_mut(&mut self) -> (&mut Vec<u32>, &mut Vec<PathMember>, &mut Vec<NodeId>) {
        (
            &mut self.active,
            &mut self.member_entries,
            &mut self.path_vertices,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdmd_graph::GraphBuilder;

    fn line_instance(lambda: f64, k: usize) -> Result<Instance, TdmdError> {
        let mut b = GraphBuilder::new(4);
        for i in 0..3 {
            b.add_bidirectional(i, i + 1);
        }
        let g = b.build();
        let flows = vec![
            Flow::new(0, 4, vec![3, 2, 1, 0]),
            Flow::new(1, 2, vec![2, 1, 0]),
        ];
        Instance::new(g, flows, lambda, k)
    }

    /// A diamond 0 → {1, 2} → 3 plus a long detour 0 → 4 → 5 → 3.
    fn diamond_instance() -> Instance {
        let mut b = GraphBuilder::new(6);
        b.add_bidirectional(0, 1);
        b.add_bidirectional(1, 3);
        b.add_bidirectional(0, 2);
        b.add_bidirectional(2, 3);
        b.add_bidirectional(0, 4);
        b.add_bidirectional(4, 5);
        b.add_bidirectional(5, 3);
        let g = b.build();
        let sets = vec![FlowPaths::new(
            0,
            4,
            vec![vec![0, 1, 3], vec![0, 2, 3], vec![0, 4, 5, 3]],
        )];
        Instance::with_path_sets(g, sets, 0.5, 1).unwrap()
    }

    #[test]
    fn valid_instance_builds() {
        let inst = line_instance(0.5, 2).unwrap();
        assert_eq!(inst.lambda(), 0.5);
        assert_eq!(inst.k(), 2);
        assert_eq!(inst.flows().len(), 2);
        assert_eq!(inst.unprocessed_bandwidth(), (4 * 3 + 2 * 2) as f64);
    }

    #[test]
    fn vertex_flow_index_has_downstream_hops() {
        let inst = line_instance(0.5, 2).unwrap();
        // Vertex 3 is f0's source: l = 3. Vertex 0 is everyone's dst: l = 0.
        assert_eq!(inst.flows_through(3), &[(0, 3)]);
        let mut at0 = inst.flows_through(0).to_vec();
        at0.sort_unstable();
        assert_eq!(at0, vec![(0, 0), (1, 0)]);
        // Vertex 2 carries f0 (l=2) and f1 (l=2).
        let mut at2 = inst.flows_through(2).to_vec();
        at2.sort_unstable();
        assert_eq!(at2, vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn singleton_path_sets_mirror_the_flows() {
        let inst = line_instance(0.5, 2).unwrap();
        let ps = inst.path_sets();
        assert_eq!(ps.flow_count(), 2);
        assert_eq!(ps.total_paths(), 2);
        for (i, f) in inst.flows().iter().enumerate() {
            assert_eq!(ps.candidate_count(i), 1);
            assert_eq!(ps.active(i), 0);
            assert_eq!(ps.path(i, 0), &f.path[..]);
            assert_eq!(ps.min_hops(i), f.hops() as u32);
        }
        // Memberships at vertex 2 match the active index rows.
        let members = ps.memberships_through(2);
        assert_eq!(members.len(), 2);
        assert_eq!(
            members[0],
            PathMember {
                flow: 0,
                path: 0,
                l: 2
            }
        );
    }

    #[test]
    fn with_path_sets_activates_the_primary() {
        let inst = diamond_instance();
        assert_eq!(inst.flows()[0].path, vec![0, 1, 3]);
        let ps = inst.path_sets();
        assert_eq!(ps.candidate_count(0), 3);
        assert_eq!(ps.global_id(0, 2), 2);
        assert_eq!(ps.path(0, 2), &[0, 4, 5, 3]);
        assert_eq!(ps.min_hops(0), 2);
        // Vertex 0 is on all three candidates, with per-candidate l.
        let ls: Vec<u32> = ps.memberships_through(0).iter().map(|m| m.l).collect();
        assert_eq!(ls, vec![2, 2, 3]);
        // Vertex 4 only sits on the detour candidate.
        assert_eq!(
            inst.path_sets().memberships_through(4),
            &[PathMember {
                flow: 0,
                path: 2,
                l: 2
            }]
        );
        // The active index only sees the primary.
        assert!(inst.flows_through(4).is_empty());
        assert_eq!(inst.flows_through(1), &[(0, 1)]);
    }

    #[test]
    fn set_active_paths_switches_and_rebuilds() {
        let mut inst = diamond_instance();
        // No-op switch: already active.
        assert_eq!(inst.set_active_paths(&[(0, 0)]), 0);
        // Switch to the detour: flows, active index and bandwidth all follow.
        assert_eq!(inst.set_active_paths(&[(0, 2)]), 1);
        assert_eq!(inst.path_sets().active(0), 2);
        assert_eq!(inst.flows()[0].path, vec![0, 4, 5, 3]);
        assert_eq!(inst.flows_through(4), &[(0, 2)]);
        assert!(inst.flows_through(1).is_empty());
        assert_eq!(inst.unprocessed_bandwidth(), 12.0);
        // Switch back: bitwise identical to a fresh build.
        inst.set_active_paths(&[(0, 0)]);
        let fresh = diamond_instance();
        assert_eq!(inst.audit_csr(), fresh.audit_csr());
        assert_eq!(inst.flows(), fresh.flows());
    }

    #[test]
    #[should_panic(expected = "candidate index")]
    fn out_of_range_switch_panics() {
        let mut inst = diamond_instance();
        inst.set_active_paths(&[(0, 9)]);
    }

    #[test]
    fn with_path_sets_rejects_mismatched_endpoints() {
        let mut b = GraphBuilder::new(3);
        b.add_bidirectional(0, 1);
        b.add_bidirectional(1, 2);
        let g = b.build();
        let sets = vec![FlowPaths {
            id: 0,
            rate: 1,
            candidates: vec![vec![0, 1, 2], vec![0, 1]],
        }];
        assert_eq!(
            Instance::with_path_sets(g, sets, 0.5, 1).unwrap_err(),
            TdmdError::InvalidPath { flow: 0 }
        );
    }

    #[test]
    fn bad_lambda_rejected() {
        assert_eq!(
            line_instance(1.5, 2).unwrap_err(),
            TdmdError::BadLambda(1.5)
        );
        assert_eq!(
            line_instance(-0.1, 2).unwrap_err(),
            TdmdError::BadLambda(-0.1)
        );
        assert!(line_instance(f64::NAN, 2).is_err());
    }

    #[test]
    fn boundary_lambdas_accepted() {
        assert!(line_instance(0.0, 2).is_ok(), "spam filter");
        assert!(line_instance(1.0, 2).is_ok(), "traffic-neutral");
    }

    #[test]
    fn invalid_path_rejected() {
        let g = GraphBuilder::new(3).build();
        let flows = vec![Flow::new(0, 1, vec![0, 1])];
        assert_eq!(
            Instance::new(g, flows, 0.5, 1).unwrap_err(),
            TdmdError::InvalidPath { flow: 0 }
        );
    }

    #[test]
    fn candidate_vertices_excludes_off_path_nodes() {
        let mut b = GraphBuilder::new(5);
        for i in 0..3 {
            b.add_bidirectional(i, i + 1);
        }
        b.add_bidirectional(0, 4); // vertex 4 carries no flow
        let g = b.build();
        let flows = vec![Flow::new(0, 1, vec![3, 2, 1, 0])];
        let inst = Instance::new(g, flows, 0.5, 1).unwrap();
        assert_eq!(inst.candidate_vertices(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn with_k_and_with_lambda_copy() {
        let inst = line_instance(0.5, 2).unwrap();
        assert_eq!(inst.with_k(7).k(), 7);
        assert_eq!(inst.with_lambda(0.0).lambda(), 0.0);
        assert_eq!(inst.k(), 2, "original untouched");
    }

    #[test]
    fn serde_round_trip_keeps_path_sets() {
        let inst = diamond_instance();
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(back.flows(), inst.flows());
        assert_eq!(back.path_sets(), inst.path_sets());
        assert_eq!(back.audit_csr(), inst.audit_csr());
    }
}
