//! Deployment and allocation plans (the paper's `P` and `F`).

use crate::instance::Instance;
use serde::{Deserialize, Serialize};
use tdmd_graph::NodeId;

/// A deployment plan `P ⊆ V`: the set of vertices carrying a
/// middlebox. Stored as a sorted vertex list plus a membership bitmap
/// for `O(1)` tests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Deployment {
    vertices: Vec<NodeId>,
    member: Vec<bool>,
}

impl Deployment {
    /// Empty deployment over a graph of `n` vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            vertices: Vec::new(),
            member: vec![false; n],
        }
    }

    /// Deployment from a vertex list (duplicates ignored).
    ///
    /// # Panics
    /// Panics if a vertex id is out of range.
    pub fn from_vertices(n: usize, vs: impl IntoIterator<Item = NodeId>) -> Self {
        let mut d = Self::empty(n);
        for v in vs {
            d.insert(v);
        }
        d
    }

    /// Adds a middlebox on `v` (idempotent). Returns true if new.
    pub fn insert(&mut self, v: NodeId) -> bool {
        let slot = &mut self.member[v as usize];
        if *slot {
            return false;
        }
        *slot = true;
        let pos = self.vertices.partition_point(|&x| x < v);
        self.vertices.insert(pos, v);
        true
    }

    /// Removes the middlebox on `v`. Returns true if present.
    pub fn remove(&mut self, v: NodeId) -> bool {
        let slot = &mut self.member[v as usize];
        if !*slot {
            return false;
        }
        *slot = false;
        let pos = self
            .vertices
            .binary_search(&v)
            .expect("bitmap and list agree");
        self.vertices.remove(pos);
        true
    }

    /// Membership test `m_v = 1`.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.member[v as usize]
    }

    /// Number of deployed middleboxes `|P|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True if no middlebox is deployed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Sorted deployed vertex list.
    #[inline]
    pub fn vertices(&self) -> &[NodeId] {
        &self.vertices
    }
}

/// An allocation plan `F`: which deployed middlebox serves each flow.
/// `assigned[f] == None` means flow `f` is unserved (infeasible
/// deployments can arise mid-algorithm).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    /// Per-flow serving vertex.
    pub assigned: Vec<Option<NodeId>>,
}

impl Allocation {
    /// True if every flow is served (Eq. 4 holds).
    pub fn is_complete(&self) -> bool {
        self.assigned.iter().all(Option::is_some)
    }

    /// Indices of unserved flows.
    pub fn unserved(&self) -> Vec<usize> {
        self.assigned
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.is_none().then_some(i))
            .collect()
    }
}

/// Evaluation summary for a deployment on an instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanReport {
    /// Total bandwidth consumption `b(P, F)` (Eq. 1).
    pub bandwidth: f64,
    /// Decrement `d(P)` (Def. 1).
    pub decrement: f64,
    /// Whether every flow is served.
    pub feasible: bool,
    /// Number of middleboxes used.
    pub middleboxes: usize,
}

impl PlanReport {
    /// Builds a report by allocating and scoring `deployment`.
    pub fn evaluate(instance: &Instance, deployment: &Deployment) -> Self {
        let alloc = crate::objective::allocate(instance, deployment);
        let bandwidth = crate::objective::bandwidth(instance, &alloc);
        let decrement = instance.unprocessed_bandwidth() - bandwidth;
        Self {
            bandwidth,
            decrement,
            feasible: alloc.is_complete(),
            middleboxes: deployment.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut d = Deployment::empty(5);
        assert!(d.is_empty());
        assert!(d.insert(3));
        assert!(!d.insert(3), "idempotent");
        assert!(d.insert(1));
        assert_eq!(d.vertices(), &[1, 3]);
        assert!(d.contains(3) && !d.contains(2));
        assert_eq!(d.len(), 2);
        assert!(d.remove(3));
        assert!(!d.remove(3));
        assert_eq!(d.vertices(), &[1]);
    }

    #[test]
    fn from_vertices_sorts_and_dedups() {
        let d = Deployment::from_vertices(6, [5, 2, 5, 0]);
        assert_eq!(d.vertices(), &[0, 2, 5]);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn allocation_completeness() {
        let full = Allocation {
            assigned: vec![Some(1), Some(2)],
        };
        assert!(full.is_complete());
        assert!(full.unserved().is_empty());
        let partial = Allocation {
            assigned: vec![Some(1), None, None],
        };
        assert!(!partial.is_complete());
        assert_eq!(partial.unserved(), vec![1, 2]);
    }
}
