//! The paper's worked examples as ready-made instances.
//!
//! These are used by unit tests to pin the implementation to the
//! paper's numbers, and by the example binaries that reproduce Fig. 1
//! / Table 2 and the Fig. 5–7 DP walk-through.

use crate::instance::Instance;
use tdmd_graph::{DiGraph, GraphBuilder};
use tdmd_traffic::Flow;

/// The Fig. 1 motivating example (0-based ids: `v1..v6` → `0..5`),
/// reconstructed so that *all* of the paper's worked numbers hold:
///
/// * Table 2's marginal decrements
///   (`d_∅ = [0, 0, 3, 1, 4, 3]` for `v1..v6`),
/// * the `k = 2` optimum `b = 12` on `{v5, v2}` (Fig. 1a),
/// * the `k = 3` optimum `b = 8` on `{v4, v5, v6}` (Fig. 1b),
/// * the GTP walk-through (`v5`, then `v6`, then `v4`; with `k = 2`
///   the feasibility fallback forces `v2`).
///
/// Flows (`λ = 0.5`): `f1: v5→v3→v1` rate 4; `f2: v6→v3→v2` rate 2;
/// `f3: v4→v2` rate 2; `f4: v6→v2` rate 2.
pub fn fig1_instance(k: usize) -> Instance {
    let mut b = GraphBuilder::new(6);
    for (u, v) in [(4, 2), (2, 0), (5, 2), (2, 1), (3, 1), (5, 1)] {
        b.add_bidirectional(u, v);
    }
    let g = b.build();
    let flows = vec![
        Flow::new(0, 4, vec![4, 2, 0]),
        Flow::new(1, 2, vec![5, 2, 1]),
        Flow::new(2, 2, vec![3, 1]),
        Flow::new(3, 2, vec![5, 1]),
    ];
    Instance::new(g, flows, 0.5, k).expect("fig1 example is valid")
}

/// The Fig. 5 DP example tree (0-based: `v1..v8` → `0..7`):
/// `v1-(v2,v3)`, `v2-(v4,v5)`, `v3-v6`, `v6-(v7,v8)`.
pub fn fig5_graph() -> DiGraph {
    let mut b = GraphBuilder::new(8);
    for (u, v) in [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (5, 6), (5, 7)] {
        b.add_bidirectional(u, v);
    }
    b.build()
}

/// The Fig. 5 DP example instance: flows `f1: v4` rate 2,
/// `f2: v8` rate 1, `f3: v7` rate 5, `f4: v5` rate 1, all destined to
/// the root `v1`, with `λ = 0.5`. The paper's optimal values are
/// `F(v1, k) = 24, 16.5, 13.5, 12` for `k = 1..4` with optimal plans
/// `{v1}`, `{v2, v6}` (or `{v1, v7}`), `{v2, v7, v8}`,
/// `{v4, v5, v7, v8}`.
pub fn fig5_instance(k: usize) -> Instance {
    let g = fig5_graph();
    let flows = vec![
        Flow::new(0, 2, vec![3, 1, 0]),
        Flow::new(1, 1, vec![7, 5, 2, 0]),
        Flow::new(2, 5, vec![6, 5, 2, 0]),
        Flow::new(3, 1, vec![4, 1, 0]),
    ];
    Instance::new(g, flows, 0.5, k).expect("fig5 example is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::bandwidth_of;
    use crate::plan::Deployment;

    #[test]
    fn fig5_k1_root_only_costs_24() {
        let inst = fig5_instance(1);
        assert_eq!(
            bandwidth_of(&inst, &Deployment::from_vertices(8, [0])),
            24.0
        );
    }

    #[test]
    fn fig5_k2_optima_cost_16_5() {
        let inst = fig5_instance(2);
        // The paper: optimal k=2 plans are {v1, v7} or {v2, v6}.
        assert_eq!(
            bandwidth_of(&inst, &Deployment::from_vertices(8, [1, 5])),
            16.5
        );
        assert_eq!(
            bandwidth_of(&inst, &Deployment::from_vertices(8, [0, 6])),
            16.5
        );
    }

    #[test]
    fn fig5_k3_optimum_costs_13_5() {
        let inst = fig5_instance(3);
        assert_eq!(
            bandwidth_of(&inst, &Deployment::from_vertices(8, [1, 6, 7])),
            13.5
        );
    }

    #[test]
    fn fig5_k4_source_placement_costs_12() {
        let inst = fig5_instance(4);
        assert_eq!(
            bandwidth_of(&inst, &Deployment::from_vertices(8, [3, 4, 6, 7])),
            12.0
        );
    }
}
