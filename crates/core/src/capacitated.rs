//! Capacitated-middlebox extension.
//!
//! The paper assumes "a middlebox does not have a capacity limit"
//! (§1); the related work it positions against (Sallam & Ji \[27\],
//! Sang et al. \[28\]) does budget middlebox capacity. This module adds
//! the natural capacitated variant: every deployed middlebox serves at
//! most `cap` flows. Two things change:
//!
//! * **Allocation is no longer forced.** The nearest-source rule can
//!   overload a box, so the optimal allocation becomes a
//!   transportation problem — solved exactly with min-cost max-flow
//!   over a bipartite flow→middlebox network whose arc gains are the
//!   per-flow decrements `r_f (1 − λ) l_v(f)`
//!   ([`tdmd_graph::flownet`]).
//! * **Feasibility needs `Σ capacities ≥ |F|`** *and* a perfect
//!   flow→box matching, which the same max-flow decides.
//!
//! [`gtp_capacitated`] scores greedily with the exact capacitated
//! evaluation; with `cap ≥ |F|` it reduces to the uncapacitated
//! behaviour (tested).

use crate::error::TdmdError;
use crate::instance::Instance;
use crate::plan::{Allocation, Deployment};
use tdmd_graph::flownet::FlowNetwork;
use tdmd_graph::NodeId;

/// Result of an exact capacitated evaluation; unmatched flows ride at
/// full rate (and make the deployment infeasible).
#[derive(Debug, Clone, PartialEq)]
pub struct CapacitatedEval {
    /// Max-gain assignment (`None` = unmatched flow).
    pub allocation: Allocation,
    /// Total bandwidth with unmatched flows at full rate.
    pub bandwidth: f64,
    /// Number of flows the matching served.
    pub matched: usize,
}

/// Exact capacitated evaluation of a deployment: computes the
/// maximum-decrement assignment of flows to middleboxes respecting the
/// per-box capacity, serving as many flows as possible first
/// (max-flow), at maximum gain among those (min-cost).
pub fn evaluate_capacitated(
    instance: &Instance,
    deployment: &Deployment,
    cap: usize,
) -> CapacitatedEval {
    let n_flows = instance.flows().len();
    if n_flows == 0 {
        return CapacitatedEval {
            allocation: Allocation { assigned: vec![] },
            bandwidth: 0.0,
            matched: 0,
        };
    }
    let boxes: Vec<NodeId> = deployment.vertices().to_vec();
    if boxes.is_empty() || cap == 0 {
        return CapacitatedEval {
            allocation: Allocation {
                assigned: vec![None; n_flows],
            },
            bandwidth: instance.unprocessed_bandwidth(),
            matched: 0,
        };
    }
    // Node layout: source, flows, boxes, sink.
    let s = 0usize;
    let flow_base = 1usize;
    let box_base = flow_base + n_flows;
    let t = box_base + boxes.len();
    let mut net = FlowNetwork::new(t + 1);
    // Scale f64 gains to integer costs (rates and hops are integral,
    // λ is a small decimal; 10^6 scaling keeps everything exact enough
    // for argmax purposes and well inside i64).
    const SCALE: f64 = 1e6;
    let factor = 1.0 - instance.lambda();
    for fi in 0..n_flows {
        net.add_arc(s, flow_base + fi, 1, 0);
    }
    // Record (arc index, box vertex) for assignment extraction; the
    // flow node's slot 0 is the residual twin of the source arc, so
    // indices are captured explicitly at insertion time.
    let mut arc_box: Vec<Vec<(usize, NodeId)>> = vec![Vec::new(); n_flows];
    for (bi, &v) in boxes.iter().enumerate() {
        for &(fi, l) in instance.flows_through(v) {
            let gain = instance.flows()[fi as usize].rate as f64 * factor * l as f64;
            let cost = -(gain * SCALE).round() as i64;
            let idx = net.out_arc_count(flow_base + fi as usize);
            net.add_arc(flow_base + fi as usize, box_base + bi, 1, cost);
            arc_box[fi as usize].push((idx, v));
        }
        net.add_arc(box_base + bi, t, cap as i64, 0);
    }
    let (flow, _cost) = net.min_cost_flow(s, t, n_flows as i64);
    // Extract the assignment: for each flow node, the forward arc with
    // zero residual capacity carries its unit.
    let mut assigned = vec![None; n_flows];
    for (fi, slot) in assigned.iter_mut().enumerate() {
        for &(idx, v) in &arc_box[fi] {
            if net.residual(flow_base + fi, idx) == 0 {
                *slot = Some(v);
                break;
            }
        }
    }
    let allocation = Allocation { assigned };
    let bandwidth = crate::objective::bandwidth(instance, &allocation);
    CapacitatedEval {
        allocation,
        bandwidth,
        matched: flow as usize,
    }
}

/// Exact capacitated allocation of flows to deployed middleboxes.
///
/// Returns the allocation and the total bandwidth consumption, or
/// `None` when no assignment serves every flow within the capacities.
pub fn allocate_capacitated(
    instance: &Instance,
    deployment: &Deployment,
    cap: usize,
) -> Option<(Allocation, f64)> {
    let eval = evaluate_capacitated(instance, deployment, cap);
    (eval.matched == instance.flows().len()).then_some((eval.allocation, eval.bandwidth))
}

/// Greedy placement under per-middlebox capacity `cap`.
///
/// Scores each candidate by the exact capacitated evaluation of the
/// trial deployment (unmatched flows at full rate — the capacitated
/// generalization of the marginal decrement), breaking ties toward
/// more matched flows, then more covered flows, then the smaller id.
/// Applies the same tight-budget coverage guard as the uncapacitated
/// GTP (capacity-blind — the final matching certifies, and a failed
/// certificate returns `Infeasible` for the caller to resample, per
/// §6.1). With `cap ≥ |F|` this reduces to `gtp_budgeted`'s behaviour.
///
/// # Errors
/// [`TdmdError::Infeasible`] when no reachable deployment serves all
/// flows within capacity.
pub fn gtp_capacitated(
    instance: &Instance,
    k: usize,
    cap: usize,
) -> Result<(Deployment, Allocation, f64), TdmdError> {
    let n_flows = instance.flows().len();
    if n_flows == 0 {
        return Ok((
            Deployment::empty(instance.node_count()),
            Allocation { assigned: vec![] },
            0.0,
        ));
    }
    if cap == 0 || k * cap < n_flows {
        return Err(TdmdError::Infeasible { budget: k });
    }
    let mut deployment = Deployment::empty(instance.node_count());
    let mut cur = evaluate_capacitated(instance, &deployment, cap);
    for round in 0..k {
        let remaining = k - round;
        // Capacity-blind coverage guard, shared with the uncapacitated
        // engine (the final matching certifies actual feasibility).
        let served: Vec<bool> = crate::objective::best_hops(instance, &deployment)
            .into_iter()
            .map(|l| l.is_some())
            .collect();
        let restricted =
            crate::algorithms::engine::guard_candidates(instance, &served, &deployment, remaining)?;
        let cands: Vec<NodeId> = match restricted {
            Some(list) => list,
            None => instance
                .candidate_vertices()
                .into_iter()
                .filter(|&v| !deployment.contains(v))
                .collect(),
        };
        // Exact trial evaluation per candidate.
        let mut best: Option<(CapacitatedEval, usize, NodeId)> = None;
        for v in cands {
            let mut trial = deployment.clone();
            trial.insert(v);
            let eval = evaluate_capacitated(instance, &trial, cap);
            let cov = crate::objective::coverage_gain(instance, &served, v);
            let better = match &best {
                None => true,
                Some((be, bc, bv)) => {
                    eval.bandwidth < be.bandwidth - 1e-12
                        || ((eval.bandwidth - be.bandwidth).abs() <= 1e-12
                            && (eval.matched > be.matched
                                || (eval.matched == be.matched
                                    && (cov > *bc || (cov == *bc && v < *bv)))))
                }
            };
            if better {
                best = Some((eval, cov, v));
            }
        }
        let Some((eval, _, v)) = best else { break };
        // Stop early only when fully matched and no candidate helps.
        if cur.matched == n_flows && eval.bandwidth >= cur.bandwidth - 1e-12 {
            break;
        }
        deployment.insert(v);
        cur = eval;
    }
    if cur.matched < n_flows {
        return Err(TdmdError::Infeasible { budget: k });
    }
    Ok((deployment, cur.allocation, cur.bandwidth))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::{allocate, bandwidth_of};
    use crate::paper::{fig1_instance, fig5_instance};

    #[test]
    fn unbounded_capacity_reduces_to_nearest_source() {
        let inst = fig5_instance(2);
        let d = Deployment::from_vertices(8, [1, 5]);
        let (alloc, b) = allocate_capacitated(&inst, &d, 100).unwrap();
        assert_eq!(b, bandwidth_of(&inst, &d));
        assert_eq!(alloc, allocate(&inst, &d));
    }

    #[test]
    fn capacity_one_forces_spreading() {
        // Fig. 5, boxes at v2 and v6 can each take one flow only: two
        // of the four flows cannot be served -> infeasible.
        let inst = fig5_instance(2);
        let d = Deployment::from_vertices(8, [1, 5]);
        assert!(allocate_capacitated(&inst, &d, 1).is_none());
        // Four boxes with capacity 1 work (one per source).
        let d = Deployment::from_vertices(8, [3, 4, 6, 7]);
        let (_, b) = allocate_capacitated(&inst, &d, 1).unwrap();
        assert_eq!(b, 12.0);
    }

    #[test]
    fn tight_capacity_degrades_gracefully() {
        // Boxes at root and v2 with capacity 2: optimal split serves
        // f1, f4 at v2 (gains 1 + 0.5) and f2, f3 at the root (gain 0).
        let inst = fig5_instance(2);
        let d = Deployment::from_vertices(8, [0, 1]);
        let (alloc, b) = allocate_capacitated(&inst, &d, 2).unwrap();
        assert_eq!(b, 24.0 - 1.5);
        // f1 (index 0) and f4 (index 3) sit on v2's subtree.
        assert_eq!(alloc.assigned[0], Some(1));
        assert_eq!(alloc.assigned[3], Some(1));
    }

    #[test]
    fn min_cost_beats_greedy_nearest_when_capacity_binds() {
        // Three flows through v5 (= id 4 in fig1)? Use fig1: boxes at
        // v2 (serves f2, f3, f4 at l=0) and v3 (serves f1, f2 at l=1).
        // cap = 2: nearest-source would send both f1 and f2 to v3 and
        // f3, f4 to v2 — which is also the max-gain matching; assert
        // the solver finds gains 2 + 1 = 3 total decrement.
        let inst = fig1_instance(2);
        let d = Deployment::from_vertices(6, [1, 2]);
        let (_, b) = allocate_capacitated(&inst, &d, 2).unwrap();
        assert_eq!(b, inst.unprocessed_bandwidth() - 3.0);
    }

    #[test]
    fn gtp_capacitated_matches_uncapacitated_when_loose() {
        let inst = fig1_instance(3);
        let (d, _, b) = gtp_capacitated(&inst, 3, 100).unwrap();
        let u = crate::algorithms::gtp::gtp_budgeted(&inst, 3).unwrap();
        assert_eq!(b, bandwidth_of(&inst, &u));
        assert!(d.len() <= 3);
    }

    #[test]
    fn gtp_capacitated_uses_more_boxes_under_tight_caps() {
        let inst = fig5_instance(4);
        // cap 1 needs >= 4 boxes for 4 flows.
        let (d, alloc, _) = gtp_capacitated(&inst, 4, 1).unwrap();
        assert_eq!(d.len(), 4);
        assert!(alloc.is_complete());
        // Each box serves exactly one flow.
        let mut counts = std::collections::BTreeMap::new();
        for a in alloc.assigned.iter().flatten() {
            *counts.entry(*a).or_insert(0usize) += 1;
        }
        assert!(counts.values().all(|&c| c <= 1));
    }

    #[test]
    fn impossible_capacity_is_infeasible() {
        let inst = fig5_instance(2);
        // k · cap = 2 < 4 flows.
        assert!(gtp_capacitated(&inst, 2, 1).is_err());
        assert!(gtp_capacitated(&inst, 2, 0).is_err());
    }

    #[test]
    fn empty_workload_is_trivial() {
        let g = crate::paper::fig5_graph();
        let inst = Instance::new(g, vec![], 0.5, 1).unwrap();
        let (alloc, b) = allocate_capacitated(&inst, &Deployment::empty(8), 1).unwrap();
        assert!(alloc.assigned.is_empty());
        assert_eq!(b, 0.0);
    }
}
