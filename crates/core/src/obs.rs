//! Engine telemetry: process-global counters on the greedy hot paths.
//!
//! The static engine drivers ([`crate::algorithms::engine`]) run deep
//! inside every solver API, so instead of threading a recorder through
//! each public entry point the counters live in one always-compiled
//! global — relaxed atomic increments, safe under rayon, costing one
//! `fetch_add` next to loops that already scan whole CSR rows.
//!
//! Usage pattern (the `tdmd bench` command, perf tests):
//!
//! ```
//! let before = tdmd_core::obs::snapshot();
//! // ... run a solver ...
//! let spent = tdmd_core::obs::snapshot().delta_since(&before);
//! println!("{} marginal-gain evaluations", spent.gain_evals);
//! ```
//!
//! Deltas between snapshots taken around a solver call are exact when
//! nothing else solves concurrently; concurrent solvers simply see
//! their counts merged (telemetry, not accounting).

use tdmd_obs::Counter;

/// The engine's counter set. See [`ENGINE`].
#[derive(Debug, Default)]
pub struct EngineCounters {
    /// Candidate scorings: one per marginal-decrement evaluation
    /// (eager scans, parallel scans, and lazy refreshes all count).
    pub gain_evals: Counter,
    /// CELF heap pops in the lazy driver (dead and live entries).
    pub lazy_pops: Counter,
    /// Lazy pops whose cached score was stale and had to be refreshed
    /// and re-pushed (the CELF "wasted" work; `lazy_pops −
    /// lazy_stale_refreshes` pops made progress).
    pub lazy_stale_refreshes: Counter,
    /// Feasibility-guard evaluations (one per guarded greedy round).
    pub guard_checks: Counter,
    /// Guard activations: rounds where the budget was tight and the
    /// guard restricted the candidate set (the paper's "can only
    /// deploy on v2" rule firing).
    pub guard_activations: Counter,
}

/// The process-global engine counters.
pub static ENGINE: EngineCounters = EngineCounters {
    gain_evals: Counter::new(),
    lazy_pops: Counter::new(),
    lazy_stale_refreshes: Counter::new(),
    guard_checks: Counter::new(),
    guard_activations: Counter::new(),
};

/// Point-in-time copy of [`ENGINE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineSnapshot {
    /// See [`EngineCounters::gain_evals`].
    pub gain_evals: u64,
    /// See [`EngineCounters::lazy_pops`].
    pub lazy_pops: u64,
    /// See [`EngineCounters::lazy_stale_refreshes`].
    pub lazy_stale_refreshes: u64,
    /// See [`EngineCounters::guard_checks`].
    pub guard_checks: u64,
    /// See [`EngineCounters::guard_activations`].
    pub guard_activations: u64,
}

impl EngineSnapshot {
    /// Counts accumulated between `earlier` and `self` (saturating,
    /// so an interleaved [`reset`] never underflows).
    pub fn delta_since(&self, earlier: &EngineSnapshot) -> EngineSnapshot {
        EngineSnapshot {
            gain_evals: self.gain_evals.saturating_sub(earlier.gain_evals),
            lazy_pops: self.lazy_pops.saturating_sub(earlier.lazy_pops),
            lazy_stale_refreshes: self
                .lazy_stale_refreshes
                .saturating_sub(earlier.lazy_stale_refreshes),
            guard_checks: self.guard_checks.saturating_sub(earlier.guard_checks),
            guard_activations: self
                .guard_activations
                .saturating_sub(earlier.guard_activations),
        }
    }
}

/// Reads every counter.
pub fn snapshot() -> EngineSnapshot {
    EngineSnapshot {
        gain_evals: ENGINE.gain_evals.get(),
        lazy_pops: ENGINE.lazy_pops.get(),
        lazy_stale_refreshes: ENGINE.lazy_stale_refreshes.get(),
        guard_checks: ENGINE.guard_checks.get(),
        guard_activations: ENGINE.guard_activations.get(),
    }
}

/// Zeroes every counter. Prefer [`EngineSnapshot::delta_since`] in
/// code that can run concurrently with other solves (tests!).
pub fn reset() {
    ENGINE.gain_evals.reset();
    ENGINE.lazy_pops.reset();
    ENGINE.lazy_stale_refreshes.reset();
    ENGINE.guard_checks.reset();
    ENGINE.guard_activations.reset();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::gtp::{gtp_budgeted, gtp_lazy};
    use crate::paper::fig1_instance;

    #[test]
    fn solves_move_the_counters() {
        let inst = fig1_instance(2);
        let before = snapshot();
        gtp_budgeted(&inst, 2).unwrap();
        let eager = snapshot().delta_since(&before);
        assert!(eager.gain_evals > 0, "eager GTP scores candidates");
        assert!(eager.guard_checks > 0, "budgeted GTP consults the guard");
        assert!(
            eager.guard_activations > 0,
            "fig1 k=2 is the paper's tight-budget walk-through"
        );

        // Slack budget: tight rounds delegate to the eager picker and
        // never touch the CELF heap, so use k = 4 for the lazy path.
        let slack = fig1_instance(4);
        let before = snapshot();
        gtp_lazy(&slack, 4).unwrap();
        let lazy = snapshot().delta_since(&before);
        assert!(lazy.lazy_pops > 0, "lazy GTP pops the CELF heap");
        assert!(
            lazy.lazy_stale_refreshes <= lazy.lazy_pops,
            "refreshes are a subset of pops"
        );
    }

    #[test]
    fn delta_since_saturates_instead_of_underflowing() {
        let hi = EngineSnapshot {
            gain_evals: 10,
            ..Default::default()
        };
        let lo = EngineSnapshot::default();
        assert_eq!(lo.delta_since(&hi).gain_evals, 0);
        assert_eq!(hi.delta_since(&lo).gain_evals, 10);
    }
}
