//! Weighted-edge objective extension.
//!
//! The paper's objective charges every link equally (`b(f)` counts
//! hops). Real WANs price links differently — a transatlantic segment
//! costs more than an intra-pod hop — and the NFV-placement literature
//! the paper builds on (e.g. Kuo et al. \[19\] on link consumption)
//! weights link usage. This module generalizes the objective to
//! per-edge costs taken from the topology's edge weights:
//!
//! `b_w(f) = r_f · ( W(p_f) − (1 − λ) · W_down(v, f) )`
//!
//! where `W(p_f)` is the total weight of the flow's path and
//! `W_down(v, f)` the weight of the edges downstream of the serving
//! middlebox `v`. Hop counting is the `w ≡ 1` special case, and every
//! structural result carries over: the weighted decrement is still
//! monotone submodular (the Thm. 2 proof only uses `W_down`'s
//! monotonicity along the path), so weighted GTP keeps the `(1 − 1/e)`
//! guarantee, and the tree DP stays exact with the uplink term scaled
//! by the edge weight.
//!
//! Since the [`CostModel`](crate::cost::CostModel) refactor this
//! module contains *no greedy loop of its own*: [`WeightedIndex`] is
//! a façade over the generic CSR [`FlowIndex`] compiled from
//! [`WeightedEdges`], and [`gtp_weighted`] dispatches straight into
//! the shared engine via [`gtp_budgeted_with`].

use crate::algorithms::gtp::gtp_budgeted_with;
use crate::cost::{FlowIndex, WeightedEdges};
use crate::error::TdmdError;
use crate::instance::Instance;
use crate::plan::Deployment;
use tdmd_graph::NodeId;

/// Precomputed weighted index: for every vertex, the flows crossing it
/// together with the *downstream path weight* from that vertex.
///
/// A thin façade over [`FlowIndex`] compiled from the
/// [`WeightedEdges`] cost model, kept for API stability.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    index: FlowIndex,
}

impl WeightedIndex {
    /// Builds the index from the instance's topology edge weights.
    ///
    /// Edge weights are resolved through a prebuilt `O(1)` lookup
    /// table ([`crate::cost::EdgeWeights`]); this used to scan the
    /// adjacency list per edge.
    ///
    /// # Panics
    /// Panics if a flow path uses a missing edge (instances validate
    /// this at construction).
    pub fn new(instance: &Instance) -> Self {
        Self {
            index: FlowIndex::build(instance, &WeightedEdges::new(instance)),
        }
    }

    /// Total weight `W(p_f)` of flow `f`'s path.
    #[inline]
    pub fn path_weight(&self, f: u32) -> f64 {
        self.index.path_cost(f)
    }

    /// Total unprocessed weighted bandwidth `Σ r_f · W(p_f)`.
    pub fn unprocessed(&self, instance: &Instance) -> f64 {
        self.index.unprocessed(instance)
    }

    /// Per-flow best downstream weight under `deployment` (`None` for
    /// unserved flows).
    pub fn best_down(&self, _instance: &Instance, deployment: &Deployment) -> Vec<Option<f64>> {
        self.index.best_down(deployment)
    }

    /// Weighted total bandwidth of a deployment under the optimal
    /// (nearest-source) allocation.
    pub fn bandwidth_of(&self, instance: &Instance, deployment: &Deployment) -> f64 {
        self.index.bandwidth_of(instance, deployment)
    }

    /// Weighted marginal decrement of adding `v` on top of the current
    /// per-flow best downstream weights (0.0 encodes unserved).
    pub fn marginal_decrement(&self, instance: &Instance, current: &[f64], v: NodeId) -> f64 {
        self.index.marginal_decrement(instance, current, v)
    }
}

/// Weighted GTP: the Alg.-1 greedy against the weighted decrement,
/// with the same tight-budget feasibility guard as the unweighted
/// variant — literally the same engine, instantiated with the
/// [`WeightedEdges`] cost model.
///
/// # Errors
/// [`TdmdError::Infeasible`] under the same conditions as
/// [`crate::algorithms::gtp::gtp_budgeted`].
pub fn gtp_weighted(instance: &Instance, k: usize) -> Result<Deployment, TdmdError> {
    gtp_budgeted_with(instance, k, &WeightedEdges::new(instance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::bandwidth_of;
    use crate::paper::fig5_instance;
    use tdmd_graph::GraphBuilder;
    use tdmd_traffic::Flow;

    /// Line 3 -> 2 -> 1 -> 0 with one expensive middle link.
    fn weighted_line(k: usize) -> Instance {
        let mut b = GraphBuilder::new(4);
        b.add_bidirectional_weighted(3, 2, 1);
        b.add_bidirectional_weighted(2, 1, 10);
        b.add_bidirectional_weighted(1, 0, 1);
        let g = b.build();
        let flows = vec![Flow::new(0, 2, vec![3, 2, 1, 0])];
        Instance::new(g, flows, 0.5, k).unwrap()
    }

    #[test]
    fn unit_weights_match_the_hop_objective() {
        let inst = fig5_instance(3);
        let index = WeightedIndex::new(&inst);
        for vs in [vec![0u32], vec![1, 5], vec![3, 4, 6, 7], vec![1, 6, 7]] {
            let d = Deployment::from_vertices(8, vs.iter().copied());
            assert_eq!(
                index.bandwidth_of(&inst, &d),
                bandwidth_of(&inst, &d),
                "{vs:?}"
            );
        }
    }

    #[test]
    fn path_weights_are_suffix_sums() {
        let inst = weighted_line(1);
        let index = WeightedIndex::new(&inst);
        assert_eq!(index.path_weight(0), 12.0);
        assert_eq!(index.unprocessed(&inst), 24.0);
    }

    #[test]
    fn weighted_objective_prices_the_expensive_link() {
        let inst = weighted_line(1);
        let index = WeightedIndex::new(&inst);
        // Box at the source: everything diminished: 0.5·2·12 = 12.
        assert_eq!(
            index.bandwidth_of(&inst, &Deployment::from_vertices(4, [3])),
            12.0
        );
        // Box at vertex 2: first (cheap) link full rate, rest halved:
        // 2·1 + 0.5·2·11 = 13.
        assert_eq!(
            index.bandwidth_of(&inst, &Deployment::from_vertices(4, [2])),
            13.0
        );
        // Box at vertex 1: both heavy links full rate: 2·11 + 0.5·2·1 = 23.
        assert_eq!(
            index.bandwidth_of(&inst, &Deployment::from_vertices(4, [1])),
            23.0
        );
    }

    #[test]
    fn weighted_gtp_picks_the_source_on_the_line() {
        let inst = weighted_line(1);
        let d = gtp_weighted(&inst, 1).unwrap();
        assert_eq!(d.vertices(), &[3]);
    }

    #[test]
    fn weighted_gtp_matches_unweighted_on_unit_weights() {
        for k in 1..=4 {
            let inst = fig5_instance(k);
            let w = gtp_weighted(&inst, k).unwrap();
            let u = crate::algorithms::gtp::gtp_budgeted(&inst, k).unwrap();
            assert_eq!(
                WeightedIndex::new(&inst).bandwidth_of(&inst, &w),
                bandwidth_of(&inst, &u),
                "k={k}"
            );
        }
    }

    #[test]
    fn weighted_gtp_diverges_from_hop_greedy_when_it_should() {
        // Three flows, k = 2: a 3-hop cheap metro flow, a 2-hop cheap
        // access flow, and a flow over a 100-cost satellite uplink.
        // Hop-greedy spends its free pick on the 3-hop flow and covers
        // the rest at the shared vertex; cost-greedy grabs the
        // satellite source and is forced to cover the others at the
        // root. The final deployments differ.
        let mut b = GraphBuilder::new(7);
        b.add_bidirectional_weighted(0, 1, 1);
        b.add_bidirectional_weighted(1, 2, 1);
        b.add_bidirectional_weighted(2, 3, 1);
        b.add_bidirectional_weighted(0, 4, 1);
        b.add_bidirectional_weighted(4, 5, 1);
        b.add_bidirectional_weighted(4, 6, 100);
        let g = b.build();
        let flows = vec![
            Flow::new(0, 1, vec![3, 2, 1, 0]),
            Flow::new(1, 1, vec![5, 4, 0]),
            Flow::new(2, 1, vec![6, 4, 0]),
        ];
        let inst = Instance::new(g, flows, 0.5, 2).unwrap();
        let index = WeightedIndex::new(&inst);
        let w = gtp_weighted(&inst, 2).unwrap();
        let u = crate::algorithms::gtp::gtp_budgeted(&inst, 2).unwrap();
        assert_ne!(w, u, "the plans must differ");
        assert!(
            w.contains(6),
            "cost-greedy must cover the satellite at its source"
        );
        assert!(
            index.bandwidth_of(&inst, &w) < index.bandwidth_of(&inst, &u),
            "cost-greedy must win on the weighted objective"
        );
        assert!(
            crate::objective::bandwidth_of(&inst, &u) < crate::objective::bandwidth_of(&inst, &w),
            "hop-greedy must win on the hop objective"
        );
    }

    #[test]
    fn weighted_infeasibility_matches_unweighted() {
        let inst = crate::paper::fig1_instance(1);
        assert!(gtp_weighted(&inst, 1).is_err());
    }
}
