//! [`TotalGain`] — the one total-order `f64` wrapper every gain /
//! priority heap in the workspace keys on.
//!
//! Four call sites used to hand-roll the same `partial_cmp`-delegates-
//! to-`total_cmp` dance (the static engine's score ladder and CELF
//! heap, HAT's merge-cost min-heap, and the online CELF queue). Each
//! copy was an opportunity to get NaN handling subtly wrong — a NaN
//! gain inside a `BinaryHeap` silently scrambles the heap property
//! under `PartialOrd`-only comparators. `TotalGain` centralizes the
//! policy:
//!
//! * ordering is [`f64::total_cmp`] — a genuine total order (IEEE 754
//!   `totalOrder`), so `Ord`/`Eq` are honest and `PartialOrd` is the
//!   paired `Some(self.cmp(other))`;
//! * NaN is *rejected at construction* in debug/audit builds
//!   ([`TotalGain::new`] debug-asserts) — gains are sums of products
//!   of finite rates and finite metrics, so a NaN is always an
//!   upstream bug, never data.
//!
//! The `tdmd-audit` lint (`cargo xtask lint`, rule `partial-cmp`)
//! enforces that any other `PartialOrd` impl on a gain wrapper is
//! backed by a paired `Ord` like this one.

use std::cmp::Ordering;

/// A gain/priority value with a total order ([`f64::total_cmp`]).
///
/// Construct through [`TotalGain::new`] so debug builds reject NaN at
/// the boundary; the raw value is reachable via [`TotalGain::get`] or
/// the public field-less accessor pattern used by heap comparators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TotalGain(f64);

impl TotalGain {
    /// Wraps a gain value.
    ///
    /// # Panics
    /// Debug builds panic on NaN — a NaN gain would silently corrupt
    /// every heap keyed on it (see the module docs).
    #[inline]
    pub fn new(gain: f64) -> Self {
        debug_assert!(!gain.is_nan(), "NaN gain entered an ordered context");
        Self(gain)
    }

    /// The wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for TotalGain {}

impl PartialOrd for TotalGain {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalGain {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_like_total_cmp() {
        let mut v = [
            TotalGain::new(2.0),
            TotalGain::new(-1.0),
            TotalGain::new(0.0),
            TotalGain::new(-0.0),
            TotalGain::new(f64::INFINITY),
        ];
        v.sort();
        let raw: Vec<f64> = v.iter().map(|g| g.get()).collect();
        assert_eq!(raw, vec![-1.0, -0.0, 0.0, 2.0, f64::INFINITY]);
        // total_cmp distinguishes the zeros: -0.0 sorts first.
        assert!(v[1].get().is_sign_negative() && v[2].get().is_sign_positive());
    }

    #[test]
    fn partial_cmp_is_the_paired_ord() {
        let a = TotalGain::new(1.0);
        let b = TotalGain::new(2.0);
        assert_eq!(a.partial_cmp(&b), Some(a.cmp(&b)));
        assert_eq!(a.partial_cmp(&a), Some(Ordering::Equal));
    }

    // Release builds skip the check (it is a debug_assert), so the
    // test only exists where the panic does.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "NaN gain")]
    fn nan_is_rejected_in_debug_builds() {
        let _ = TotalGain::new(f64::NAN);
    }

    #[test]
    fn works_as_a_binary_heap_key() {
        use std::collections::BinaryHeap;
        let mut h: BinaryHeap<TotalGain> = [3.5, -2.0, 7.25, 0.0]
            .into_iter()
            .map(TotalGain::new)
            .collect();
        assert_eq!(h.pop().map(TotalGain::get), Some(7.25));
        assert_eq!(h.pop().map(TotalGain::get), Some(3.5));
    }
}
