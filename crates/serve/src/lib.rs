//! # tdmd-serve — the long-running placement service
//!
//! Wraps the online engine ([`tdmd_online::OnlineEngine`]) as a
//! daemon: newline-delimited JSON events in, placement decisions and
//! periodic telemetry out, with graceful shutdown and versioned
//! snapshot/restore of the live state.
//!
//! * [`wire`] — the NDJSON protocol: [`WireEvent`] input lines,
//!   [`WireRecord`] output lines, and the [`Telemetry`] payload with
//!   per-tenant fairness figures.
//! * [`session`] — [`ServeSession`], the service loop over any
//!   `BufRead`/`Write` pair (stdin/stdout in the CLI), plus
//!   [`ServeSnapshot`] with the same bitwise-restore contract the
//!   engine gives: restore + replay ≡ never stopping.
//! * `net` (feature `net`) — an optional TCP front-end speaking the
//!   same protocol, one connection at a time.
//!
//! # Example
//!
//! Drive a session from an in-memory NDJSON transcript:
//!
//! ```
//! use tdmd_graph::DiGraph;
//! use tdmd_online::{HopPricer, OnlineEngine, RepairPolicy};
//! use tdmd_serve::{ServeConfig, ServeSession};
//!
//! let graph = DiGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1)]);
//! let engine =
//!     OnlineEngine::new(graph, 0.5, 1, HopPricer::default(), RepairPolicy::default())
//!         .expect("valid parameters");
//! let mut session = ServeSession::new(engine, ServeConfig::default());
//!
//! let input = concat!(
//!     r#"{"Arrive":{"key":1,"rate":4,"path":[0,1,2],"tenant":1}}"#, "\n",
//!     r#""Telemetry""#, "\n",
//!     r#""Shutdown""#, "\n",
//! );
//! let mut output = Vec::new();
//! session.run(input.as_bytes(), &mut output)?;
//! let text = String::from_utf8(output).expect("NDJSON output is UTF-8");
//! assert!(text.contains("\"Placement\""));
//! assert!(text.contains("\"Bye\""));
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "net")]
pub mod net;
pub mod session;
pub mod wire;

pub use session::{ServeConfig, ServeSession, ServeSnapshot, SERVE_SNAPSHOT_VERSION};
pub use wire::{Telemetry, TenantTelemetry, WireEvent, WireRecord};
