//! The serve wire format: newline-delimited JSON, one record per
//! line, in both directions.
//!
//! Input lines deserialize to [`WireEvent`]; output lines serialize
//! from [`WireRecord`]. Both are externally tagged
//! (`{"Arrive":{...}}`; payload-free control events are bare strings:
//! `"Snapshot"`, `"Telemetry"`, `"Shutdown"`), so the stream is
//! self-describing and new variants are additive schema changes.
//! Unknown or malformed input lines never kill the daemon — they come
//! back as [`WireRecord::Rejected`] and the loop continues.

use serde::{Deserialize, Serialize};
use tdmd_graph::NodeId;
use tdmd_online::FlowKey;
use tdmd_traffic::TenantId;

/// One input line of the event stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireEvent {
    /// A flow arrival. `tenant` defaults to `0`, so pre-tenant event
    /// streams keep replaying unchanged.
    Arrive {
        /// Stream-stable flow key.
        key: FlowKey,
        /// Rate in integral rate units.
        rate: u64,
        /// Path as a vertex sequence `src .. dst`.
        path: Vec<NodeId>,
        /// Tenant / traffic class of the flow.
        #[serde(default)]
        tenant: TenantId,
    },
    /// A flow departure.
    Depart {
        /// Key of the departing flow.
        key: FlowKey,
    },
    /// A middlebox failure at a vertex currently hosting one.
    Fail {
        /// Failing vertex.
        vertex: NodeId,
    },
    /// A whole vertex going down (middlebox or not).
    Down {
        /// Failing vertex.
        vertex: NodeId,
    },
    /// Recovery of a failed vertex.
    Recover {
        /// Recovering vertex.
        vertex: NodeId,
    },
    /// Take a state snapshot right now (in addition to any
    /// `--snapshot-every` schedule).
    Snapshot,
    /// Emit a telemetry record right now.
    Telemetry,
    /// Graceful shutdown — same effect as end-of-stream.
    Shutdown,
}

/// Per-tenant fairness figures inside a [`Telemetry`] record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantTelemetry {
    /// Tenant / traffic class id.
    pub tenant: TenantId,
    /// Total rate units of the tenant's flows currently served by a
    /// live middlebox.
    pub served_bw: u64,
    /// Total rate units of the tenant's flows riding degraded (no
    /// serving middlebox).
    pub degraded_bw: u64,
    /// Events attributed to this tenant since the session started
    /// (arrivals/departures of its flows, plus every failure-class
    /// event while the tenant had active flows).
    pub events: u64,
    /// p50 of the attributed per-event apply latency in µs; `None`
    /// until the first attributed event (absent data never reads as a
    /// measured 0).
    pub apply_p50_us: Option<f64>,
    /// p99 of the attributed per-event apply latency in µs.
    pub apply_p99_us: Option<f64>,
}

/// A periodic (or requested) telemetry snapshot of the session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Telemetry {
    /// Events applied by the engine since the session started (or was
    /// restored — the engine's own lifetime counter continues across
    /// restores; this one counts the session's).
    pub events: u64,
    /// Currently active flows.
    pub active_flows: u64,
    /// Current deployment, ascending.
    pub deployment: Vec<NodeId>,
    /// Exact objective of the current state (drift-free sum — equal
    /// bitwise between a restored session and the one that snapshot
    /// it).
    pub objective: f64,
    /// Active flows with no serving middlebox.
    pub degraded_flows: u64,
    /// p50 of the whole event-loop latency in µs (decode + apply +
    /// accounting).
    pub event_p50_us: Option<f64>,
    /// p99 of the whole event-loop latency in µs.
    pub event_p99_us: Option<f64>,
    /// State snapshots taken over the session's history (carried
    /// through snapshot/restore).
    pub snapshots_taken: u64,
    /// Times this session line was restored from a snapshot.
    pub snapshots_restored: u64,
    /// Middleboxes moved (deployed or dropped) by repair and replans
    /// over the engine's lifetime. Defaults keep pre-budget telemetry
    /// consumers replaying unchanged.
    #[serde(default)]
    pub boxes_moved: u64,
    /// Flow→middlebox reassignments caused by those moves.
    #[serde(default)]
    pub flows_reassigned: u64,
    /// Reconfigurations skipped because the migration budget could not
    /// cover them (deferred to later events).
    #[serde(default)]
    pub budget_deferrals: u64,
    /// Migration cost charged against the budget over the engine's
    /// lifetime (token units).
    #[serde(default)]
    pub budget_spent: f64,
    /// Migration tokens currently available. `None` when the engine
    /// runs an unlimited budget (no bucket to report).
    #[serde(default)]
    pub budget_tokens: Option<f64>,
    /// Per-tenant fairness figures, ascending by tenant id.
    pub tenants: Vec<TenantTelemetry>,
}

/// One output line of the serve loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireRecord {
    /// The deployment changed while applying an event.
    Placement {
        /// Session event count at the change.
        event: u64,
        /// New deployment, ascending.
        deployment: Vec<NodeId>,
        /// Exact objective under the new deployment.
        objective: f64,
    },
    /// A periodic or requested telemetry snapshot.
    Telemetry {
        /// The telemetry payload.
        telemetry: Telemetry,
    },
    /// A state snapshot was taken.
    Snapshot {
        /// Session event count at the snapshot.
        event: u64,
        /// File the snapshot was written to, if a path is configured
        /// (it is also retained in memory either way).
        path: Option<String>,
    },
    /// An input line was rejected; the loop continues.
    Rejected {
        /// 1-based input line number.
        line: u64,
        /// Human-readable reason.
        error: String,
    },
    /// Graceful shutdown: the final telemetry.
    Bye {
        /// Final telemetry at shutdown.
        telemetry: Telemetry,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_json() {
        let events = vec![
            WireEvent::Arrive {
                key: 7,
                rate: 3,
                path: vec![0, 1, 2],
                tenant: 2,
            },
            WireEvent::Depart { key: 7 },
            WireEvent::Fail { vertex: 1 },
            WireEvent::Down { vertex: 2 },
            WireEvent::Recover { vertex: 1 },
            WireEvent::Snapshot,
            WireEvent::Telemetry,
            WireEvent::Shutdown,
        ];
        for ev in events {
            let line = serde_json::to_string(&ev).unwrap();
            let back: WireEvent = serde_json::from_str(&line).unwrap();
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn arrivals_without_tenant_default_to_zero() {
        let line = r#"{"Arrive":{"key":1,"rate":2,"path":[0,1]}}"#;
        let ev: WireEvent = serde_json::from_str(line).unwrap();
        assert_eq!(
            ev,
            WireEvent::Arrive {
                key: 1,
                rate: 2,
                path: vec![0, 1],
                tenant: 0
            }
        );
    }

    #[test]
    fn malformed_lines_fail_to_parse() {
        assert!(serde_json::from_str::<WireEvent>("not json").is_err());
        assert!(serde_json::from_str::<WireEvent>(r#"{"Unknown":{}}"#).is_err());
    }

    #[test]
    fn records_round_trip_through_json() {
        let rec = WireRecord::Placement {
            event: 42,
            deployment: vec![1, 3],
            objective: 8.5,
        };
        let line = serde_json::to_string(&rec).unwrap();
        let back: WireRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(back, rec);
    }
}
