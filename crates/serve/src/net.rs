//! Optional TCP front-end (feature `net`).
//!
//! A deliberately minimal listener: one connection at a time, each
//! speaking exactly the NDJSON protocol of [`ServeSession::run`] —
//! events in, records out, connection closed after `Shutdown` or
//! end-of-stream. The session (and hence engine state, tenant map and
//! counters) persists *across* connections, so a client can connect,
//! stream a batch, disconnect, and a later client resumes where it
//! left off. There is no authentication and no TLS — bind to
//! localhost or trusted networks only.

use std::io::{BufReader, Write};
use std::net::{TcpListener, ToSocketAddrs};

use tdmd_online::PathPricer;

use crate::session::ServeSession;

/// Serves `session` over TCP: binds `addr`, then accepts connections
/// one at a time, running the NDJSON protocol on each until the
/// client disconnects or sends `Shutdown`. Returns after
/// `max_connections` connections have been served (use this to bound
/// tests; pass `u64::MAX` for an effectively unbounded daemon).
///
/// # Errors
/// Propagates bind/accept failures and per-connection I/O errors.
pub fn serve_tcp<P: PathPricer>(
    session: &mut ServeSession<P>,
    addr: impl ToSocketAddrs,
    max_connections: u64,
) -> std::io::Result<()> {
    serve_listener(session, TcpListener::bind(addr)?, max_connections)
}

/// [`serve_tcp`] on an already-bound listener — lets callers bind to
/// port 0 and learn the assigned address before serving.
///
/// # Errors
/// Propagates accept failures and per-connection I/O errors.
pub fn serve_listener<P: PathPricer>(
    session: &mut ServeSession<P>,
    listener: TcpListener,
    max_connections: u64,
) -> std::io::Result<()> {
    let mut served = 0u64;
    while served < max_connections {
        let (stream, _peer) = listener.accept()?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream;
        session.run(reader, &mut writer)?;
        writer.flush()?;
        served += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ServeConfig;
    use std::io::{BufRead, BufReader as StdBufReader};
    use std::net::TcpStream;
    use tdmd_graph::DiGraph;
    use tdmd_online::{HopPricer, OnlineEngine, RepairPolicy};

    #[test]
    fn tcp_roundtrip_speaks_the_ndjson_protocol() {
        let graph = DiGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1)]);
        let engine =
            OnlineEngine::new(graph, 0.5, 1, HopPricer::default(), RepairPolicy::default())
                .unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        let server = std::thread::spawn(move || {
            let mut session = ServeSession::new(engine, ServeConfig::default());
            serve_listener(&mut session, listener, 1).unwrap();
            session.events()
        });

        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(
                concat!(
                    r#"{"Arrive":{"key":1,"rate":4,"path":[0,1,2]}}"#,
                    "\n",
                    r#""Shutdown""#,
                    "\n",
                )
                .as_bytes(),
            )
            .unwrap();
        stream.flush().unwrap();
        let mut lines = Vec::new();
        for line in StdBufReader::new(stream).lines() {
            lines.push(line.unwrap());
        }
        assert!(lines.iter().any(|l| l.contains("\"Placement\"")));
        assert!(lines.last().unwrap().contains("\"Bye\""));
        assert_eq!(server.join().unwrap(), 1);
    }
}
