//! [`ServeSession`] — the long-running placement service loop.
//!
//! A session wraps an [`OnlineEngine`] and drives it from a
//! newline-delimited JSON event stream ([`WireEvent`]), writing
//! placement decisions, periodic telemetry and snapshot notices
//! ([`WireRecord`]) to an output stream. The loop never panics on bad
//! input: malformed lines and engine-rejected events come back as
//! [`WireRecord::Rejected`] and processing continues.
//!
//! # Snapshot / restore
//!
//! [`ServeSession::snapshot`] captures a versioned [`ServeSnapshot`]:
//! the engine's bitwise-restorable state
//! ([`EngineSnapshot`](tdmd_online::EngineSnapshot)) plus the
//! session's tenant map and lifetime counters.
//! [`ServeSession::restore`] rebuilds a session that is bitwise
//! interchangeable with the one that took the snapshot: replaying the
//! same remaining events yields identical deployments and objectives
//! (`exact_objective` bit-for-bit — the engine-level property test
//! pins this; the serve-level test pins it through the full NDJSON
//! pipeline). Per-tenant latency samples are deliberately *not*
//! carried across a restore — they are measurements of a process
//! lifetime, not replayable state.
//!
//! # Fairness accounting
//!
//! Per-tenant served/degraded bandwidth is recomputed from the engine
//! state on every telemetry tick by summing integer rates — an
//! order-independent sum, so it never depends on event history.
//! Per-tenant apply latency attributes arrivals/departures to the
//! flow's tenant and failure-class events to every tenant with active
//! flows at that moment.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufRead, Error, ErrorKind, Write};
use std::path::PathBuf;

use serde::{Deserialize, Serialize};
use tdmd_obs::{keys, normalize_zero, percentile_opt, Recorder, StatsRecorder, Stopwatch};
use tdmd_online::{Event, FlowKey, OnlineEngine, PathPricer, RepairPolicy, SnapshotError};
use tdmd_traffic::TenantId;

use crate::wire::{Telemetry, TenantTelemetry, WireEvent, WireRecord};

/// Schema version written by [`ServeSession::snapshot`];
/// [`ServeSession::restore`] rejects any other value.
pub const SERVE_SNAPSHOT_VERSION: u32 = 1;

/// Configuration of the serve loop's periodic work.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeConfig {
    /// Emit a [`WireRecord::Telemetry`] every this many applied
    /// events (`0` = only at shutdown).
    pub telemetry_every: u64,
    /// Take a state snapshot every this many applied events
    /// (`0` = only on explicit [`WireEvent::Snapshot`] requests).
    pub snapshot_every: u64,
    /// Where to write snapshots (overwritten each time, latest wins).
    /// With `None` the latest snapshot is only retained in memory
    /// ([`ServeSession::last_snapshot`]).
    pub snapshot_path: Option<PathBuf>,
}

/// A versioned capture of a serve session: the engine's
/// bitwise-restorable state plus the session's tenant map and
/// lifetime counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeSnapshot {
    /// Schema version ([`SERVE_SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The wrapped engine state.
    pub engine: tdmd_online::EngineSnapshot,
    /// `(flow key, tenant)` of every active flow, ascending by key.
    pub tenants: Vec<(FlowKey, TenantId)>,
    /// Every tenant the session had ever seen, ascending — restored
    /// sessions keep reporting these in telemetry even when a tenant
    /// has no activity after the restore (their latency *samples* are
    /// process-lifetime measurements and are not carried).
    pub known_tenants: Vec<TenantId>,
    /// Events the session had applied when the snapshot was taken.
    pub events: u64,
    /// Snapshots taken over the session line's history (this one
    /// included).
    pub snapshots_taken: u64,
    /// Times the session line had been restored.
    pub snapshots_restored: u64,
}

/// The long-running placement service: an [`OnlineEngine`] plus
/// tenant accounting, telemetry and snapshot scheduling.
pub struct ServeSession<P: PathPricer> {
    engine: OnlineEngine<P>,
    config: ServeConfig,
    /// Tenant of every active flow (arrivals insert, departures
    /// remove). Ordered so that snapshots and telemetry iterate it
    /// deterministically — see the `map-iter-order` lint.
    tenants: BTreeMap<FlowKey, TenantId>,
    /// Session telemetry (event-loop latencies, snapshot counters,
    /// per-tenant bandwidth samples) — the engine itself runs the
    /// zero-cost [`NoopRecorder`](tdmd_obs::NoopRecorder).
    recorder: StatsRecorder,
    /// Per-tenant attributed apply-latency samples in µs.
    latencies: BTreeMap<TenantId, Vec<f64>>,
    events: u64,
    snapshots_taken: u64,
    snapshots_restored: u64,
    last_snapshot: Option<ServeSnapshot>,
}

impl<P: PathPricer> ServeSession<P> {
    /// Wraps a fresh engine.
    pub fn new(engine: OnlineEngine<P>, config: ServeConfig) -> Self {
        Self {
            engine,
            config,
            tenants: BTreeMap::new(),
            recorder: StatsRecorder::new(),
            latencies: BTreeMap::new(),
            events: 0,
            snapshots_taken: 0,
            snapshots_restored: 0,
            last_snapshot: None,
        }
    }

    /// Rebuilds a session from a snapshot. Topology, pricer and
    /// policy are supplied by the caller exactly as at construction,
    /// like [`OnlineEngine::restore`].
    ///
    /// # Errors
    /// Rejects unknown versions and structurally invalid engine state
    /// ([`SnapshotError`]).
    pub fn restore(
        graph: tdmd_graph::DiGraph,
        pricer: P,
        policy: RepairPolicy,
        config: ServeConfig,
        snap: &ServeSnapshot,
    ) -> Result<Self, SnapshotError> {
        if snap.version != SERVE_SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: snap.version,
            });
        }
        let engine =
            OnlineEngine::restore(graph, pricer, policy, tdmd_obs::NoopRecorder, &snap.engine)?;
        let recorder = StatsRecorder::new();
        recorder.count(keys::SNAPSHOTS_RESTORED, 1);
        Ok(Self {
            engine,
            config,
            tenants: snap.tenants.iter().copied().collect(),
            recorder,
            latencies: snap
                .known_tenants
                .iter()
                .map(|&t| (t, Vec::new()))
                .collect(),
            events: snap.events,
            snapshots_taken: snap.snapshots_taken,
            snapshots_restored: snap.snapshots_restored + 1,
            last_snapshot: None,
        })
    }

    /// The wrapped engine.
    #[inline]
    pub fn engine(&self) -> &OnlineEngine<P> {
        &self.engine
    }

    /// Events applied by this session line (carried across restores).
    #[inline]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The session's telemetry recorder (event-loop latencies,
    /// snapshot counters, per-tenant bandwidth samples).
    #[inline]
    pub fn recorder(&self) -> &StatsRecorder {
        &self.recorder
    }

    /// The most recent snapshot taken by this session, if any.
    #[inline]
    pub fn last_snapshot(&self) -> Option<&ServeSnapshot> {
        self.last_snapshot.as_ref()
    }

    /// Takes a state snapshot now (canonicalizing the engine in
    /// place — see [`tdmd_online::snapshot`]), retains it as
    /// [`ServeSession::last_snapshot`], and returns a copy. Writing
    /// it anywhere is the caller's concern; the run loop handles the
    /// configured [`ServeConfig::snapshot_path`].
    pub fn snapshot(&mut self) -> ServeSnapshot {
        self.snapshots_taken += 1;
        self.recorder.count(keys::SNAPSHOTS_TAKEN, 1);
        // BTreeMap iteration is already ascending by key — exactly
        // the snapshot's documented order.
        let tenants: Vec<(FlowKey, TenantId)> =
            self.tenants.iter().map(|(&k, &t)| (k, t)).collect();
        let known: BTreeSet<TenantId> = self
            .latencies
            .keys()
            .copied()
            .chain(self.tenants.values().copied())
            .collect();
        let snap = ServeSnapshot {
            version: SERVE_SNAPSHOT_VERSION,
            engine: self.engine.snapshot(),
            tenants,
            known_tenants: known.into_iter().collect(),
            events: self.events,
            snapshots_taken: self.snapshots_taken,
            snapshots_restored: self.snapshots_restored,
        };
        self.last_snapshot = Some(snap.clone());
        snap
    }

    /// Builds a telemetry record — and *ticks* the fairness samplers:
    /// each call records one [`keys::TENANT_SERVED_BW`] /
    /// [`keys::TENANT_DEGRADED_BW`] sample per tenant.
    pub fn telemetry(&self) -> Telemetry {
        // Order-independent integer sums over the live engine state.
        // Every tenant the session has ever seen is listed, even when
        // its flows have all drained.
        let mut per: BTreeMap<TenantId, (u64, u64)> = BTreeMap::new();
        for t in self.latencies.keys().chain(self.tenants.values()) {
            per.entry(*t).or_insert((0, 0));
        }
        for f in self.engine.state().active_flows() {
            let t = self.tenants.get(&f.key).copied().unwrap_or(0);
            let entry = per.entry(t).or_insert((0, 0));
            if f.assigned.is_some() {
                entry.0 += f.rate;
            } else {
                entry.1 += f.rate;
            }
        }
        let mut tenants = Vec::with_capacity(per.len());
        for (t, (served, degraded)) in per {
            self.recorder.sample(keys::TENANT_SERVED_BW, served as f64);
            self.recorder
                .sample(keys::TENANT_DEGRADED_BW, degraded as f64);
            let mut lat = self.latencies.get(&t).cloned().unwrap_or_default();
            lat.sort_by(f64::total_cmp);
            tenants.push(TenantTelemetry {
                tenant: t,
                served_bw: served,
                degraded_bw: degraded,
                events: lat.len() as u64,
                apply_p50_us: percentile_opt(&lat, 50.0),
                apply_p99_us: percentile_opt(&lat, 99.0),
            });
        }
        Telemetry {
            events: self.events,
            active_flows: self.engine.active_count() as u64,
            deployment: self.engine.deployment().vertices().to_vec(),
            objective: normalize_zero(self.engine.exact_objective()),
            degraded_flows: self.engine.degraded_count() as u64,
            event_p50_us: self.recorder.percentile_of(keys::SERVE_EVENT_US, 50.0),
            event_p99_us: self.recorder.percentile_of(keys::SERVE_EVENT_US, 99.0),
            snapshots_taken: self.snapshots_taken,
            snapshots_restored: self.snapshots_restored,
            boxes_moved: self.engine.stats().boxes_moved,
            flows_reassigned: self.engine.stats().flows_reassigned,
            budget_deferrals: self.engine.stats().budget_deferrals,
            budget_spent: self.engine.stats().budget_spent,
            budget_tokens: self
                .engine
                .budget_tokens()
                .is_finite()
                .then(|| self.engine.budget_tokens()),
            tenants,
        }
    }

    /// Applies one wire event to the engine with latency accounting.
    /// Returns the engine's verdict; tenant bookkeeping only happens
    /// on success.
    pub fn apply(&mut self, ev: &WireEvent) -> Result<(), tdmd_online::OnlineError> {
        let (event, tenant) = match ev {
            WireEvent::Arrive {
                key,
                rate,
                path,
                tenant,
            } => (
                Event::FlowArrived {
                    key: *key,
                    rate: *rate,
                    path: path.clone(),
                },
                Some(*tenant),
            ),
            WireEvent::Depart { key } => (
                Event::FlowDeparted { key: *key },
                self.tenants.get(key).copied(),
            ),
            WireEvent::Fail { vertex } => (Event::MiddleboxFailed { vertex: *vertex }, None),
            WireEvent::Down { vertex } => (Event::VertexDown { vertex: *vertex }, None),
            WireEvent::Recover { vertex } => (Event::MiddleboxRecovered { vertex: *vertex }, None),
            // Control lines carry no engine event.
            WireEvent::Snapshot | WireEvent::Telemetry | WireEvent::Shutdown => return Ok(()),
        };
        let sw = Stopwatch::start();
        let result = self.engine.apply(&event);
        let us = sw.elapsed_us();
        self.recorder.sample(keys::SERVE_EVENT_US, us);
        if result.is_ok() {
            self.events += 1;
            match ev {
                WireEvent::Arrive { key, tenant, .. } => {
                    self.tenants.insert(*key, *tenant);
                }
                WireEvent::Depart { key } => {
                    self.tenants.remove(key);
                }
                _ => {}
            }
            match tenant {
                Some(t) => self.latencies.entry(t).or_default().push(us),
                None => {
                    // Failure-class events repair every tenant's
                    // flows; attribute the latency to each active
                    // tenant.
                    let affected: BTreeSet<TenantId> = self.tenants.values().copied().collect();
                    for t in affected {
                        self.latencies.entry(t).or_default().push(us);
                    }
                }
            }
        }
        result
    }

    /// Serializes `record` as one NDJSON output line.
    fn emit(&self, writer: &mut impl Write, record: &WireRecord) -> std::io::Result<()> {
        let line = serde_json::to_string(record)
            .map_err(|e| Error::new(ErrorKind::InvalidData, e.to_string()))?;
        writeln!(writer, "{line}")
    }

    /// Takes a snapshot, writes it to the configured path (if any)
    /// and emits the [`WireRecord::Snapshot`] notice.
    fn snapshot_and_emit(&mut self, writer: &mut impl Write) -> std::io::Result<()> {
        let snap = self.snapshot();
        let path = if let Some(p) = &self.config.snapshot_path {
            let json = serde_json::to_string(&snap)
                .map_err(|e| Error::new(ErrorKind::InvalidData, e.to_string()))?;
            std::fs::write(p, json)?;
            Some(p.display().to_string())
        } else {
            None
        };
        self.emit(
            writer,
            &WireRecord::Snapshot {
                event: self.events,
                path,
            },
        )
    }

    /// Runs the service loop: reads NDJSON events from `reader` until
    /// end-of-stream or a [`WireEvent::Shutdown`] line, writing
    /// [`WireRecord`] lines to `writer`. Always ends with a
    /// [`WireRecord::Bye`] carrying the final telemetry, then
    /// flushes.
    ///
    /// # Errors
    /// Only I/O failures on `reader`/`writer` (or the snapshot path)
    /// abort the loop — bad *input lines* are reported as
    /// [`WireRecord::Rejected`] and skipped.
    pub fn run(&mut self, reader: impl BufRead, mut writer: impl Write) -> std::io::Result<()> {
        for (idx, line) in reader.lines().enumerate() {
            let line = line?;
            let line_no = idx as u64 + 1;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let ev: WireEvent = match serde_json::from_str(trimmed) {
                Ok(ev) => ev,
                Err(e) => {
                    self.emit(
                        &mut writer,
                        &WireRecord::Rejected {
                            line: line_no,
                            error: e.to_string(),
                        },
                    )?;
                    continue;
                }
            };
            match ev {
                WireEvent::Shutdown => break,
                WireEvent::Snapshot => self.snapshot_and_emit(&mut writer)?,
                WireEvent::Telemetry => {
                    let telemetry = self.telemetry();
                    self.emit(&mut writer, &WireRecord::Telemetry { telemetry })?;
                }
                ref event => {
                    let before = self.engine.deployment().vertices().to_vec();
                    match self.apply(event) {
                        Ok(()) => {
                            if self.engine.deployment().vertices() != before.as_slice() {
                                self.emit(
                                    &mut writer,
                                    &WireRecord::Placement {
                                        event: self.events,
                                        deployment: self.engine.deployment().vertices().to_vec(),
                                        objective: normalize_zero(self.engine.exact_objective()),
                                    },
                                )?;
                            }
                            let snap_due = self.config.snapshot_every > 0
                                && self.events.is_multiple_of(self.config.snapshot_every);
                            if snap_due {
                                self.snapshot_and_emit(&mut writer)?;
                            }
                            let tele_due = self.config.telemetry_every > 0
                                && self.events.is_multiple_of(self.config.telemetry_every);
                            if tele_due {
                                let telemetry = self.telemetry();
                                self.emit(&mut writer, &WireRecord::Telemetry { telemetry })?;
                            }
                        }
                        Err(e) => self.emit(
                            &mut writer,
                            &WireRecord::Rejected {
                                line: line_no,
                                error: e.to_string(),
                            },
                        )?,
                    }
                }
            }
        }
        let telemetry = self.telemetry();
        self.emit(&mut writer, &WireRecord::Bye { telemetry })?;
        writer.flush()
    }
}
