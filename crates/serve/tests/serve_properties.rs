//! End-to-end properties of the serve loop:
//!
//! * **Restore ≡ never stopping** — run a session over a random
//!   multi-tenant event stream, snapshotting mid-stream; restore a
//!   second session from the (JSON round-tripped) snapshot and replay
//!   the suffix: final deployments, objectives (bitwise) and
//!   per-tenant served/degraded bandwidth are identical.
//! * **NDJSON pipeline** — the same property through the full
//!   reader/writer loop: pipe the whole stream into one session and
//!   the tail into a restored one, compare the `Bye` telemetry.
//! * **Robustness** — bad lines and engine-rejected events produce
//!   `Rejected` records and never kill the loop.

use std::io::BufRead;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdmd_graph::generators::random::erdos_renyi_connected;
use tdmd_graph::traversal::bfs;
use tdmd_graph::{DiGraph, NodeId};
use tdmd_online::{FlowKey, HopPricer, OnlineEngine, RepairPolicy};
use tdmd_serve::{ServeConfig, ServeSession, ServeSnapshot, Telemetry, WireEvent, WireRecord};

/// BFS shortest path `src → dst` (the generator guarantees
/// connectivity).
fn shortest_path(g: &DiGraph, src: NodeId, dst: NodeId) -> Vec<NodeId> {
    let r = bfs(g, src);
    let mut path = vec![dst];
    let mut v = dst;
    while v != src {
        v = r.parent[v as usize];
        path.push(v);
    }
    path.reverse();
    path
}

/// A random multi-tenant history of arrivals, departures, vertex
/// failures and recoveries, all valid for sequential application.
fn random_wire_events(g: &DiGraph, seed: u64, len: usize) -> Vec<WireEvent> {
    let n = g.node_count() as NodeId;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut active: Vec<FlowKey> = Vec::new();
    let mut failed: Vec<NodeId> = Vec::new();
    let mut next_key: FlowKey = 0;
    let mut out = Vec::new();
    for _ in 0..len {
        match rng.gen_range(0..10) {
            0..=4 => {
                let src = rng.gen_range(0..n);
                let mut dst = rng.gen_range(0..n);
                while dst == src {
                    dst = rng.gen_range(0..n);
                }
                out.push(WireEvent::Arrive {
                    key: next_key,
                    rate: rng.gen_range(1..=10),
                    path: shortest_path(g, src, dst),
                    tenant: rng.gen_range(0..3),
                });
                active.push(next_key);
                next_key += 1;
            }
            5..=6 if !active.is_empty() => {
                let i = rng.gen_range(0..active.len());
                out.push(WireEvent::Depart {
                    key: active.swap_remove(i),
                });
            }
            7..=8 if (failed.len() as NodeId) < n => {
                let mut v = rng.gen_range(0..n);
                while failed.contains(&v) {
                    v = rng.gen_range(0..n);
                }
                out.push(WireEvent::Down { vertex: v });
                failed.push(v);
            }
            _ if !failed.is_empty() => {
                let i = rng.gen_range(0..failed.len());
                out.push(WireEvent::Recover {
                    vertex: failed.swap_remove(i),
                });
            }
            _ => {} // nothing valid to do this tick
        }
    }
    out
}

fn policy() -> RepairPolicy {
    RepairPolicy {
        move_budget: 2,
        drift_eps: 0.05,
        sample_every: 3,
        force_replan: false,
        replan_on_degraded: true,
        ..RepairPolicy::default()
    }
}

fn session(g: &DiGraph, k: usize) -> ServeSession<HopPricer> {
    let engine = OnlineEngine::new(g.clone(), 0.5, k, HopPricer::default(), policy())
        .expect("valid engine parameters");
    ServeSession::new(engine, ServeConfig::default())
}

/// The replayable subset of a telemetry record: everything except the
/// process-lifetime latency percentiles and snapshot counters.
type ReplayFields = (u64, u64, Vec<NodeId>, u64, u64, Vec<(u16, u64, u64)>);

fn replay_fields(t: &Telemetry) -> ReplayFields {
    (
        t.events,
        t.active_flows,
        t.deployment.clone(),
        t.objective.to_bits(),
        t.degraded_flows,
        t.tenants
            .iter()
            .map(|x| (x.tenant, x.served_bw, x.degraded_bw))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Snapshot mid-stream, restore (through JSON), replay the
    /// suffix: the restored session's final state is bitwise equal to
    /// the session that never stopped.
    #[test]
    fn restored_session_replays_to_the_same_state(
        seed in any::<u64>(),
        n in 4usize..12,
        prefix in 0usize..20,
        suffix in 1usize..20,
        k in 1usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi_connected(n, 0.3, &mut rng);
        let events = random_wire_events(&g, seed ^ 0x5A, prefix + suffix);
        let cut = prefix.min(events.len());

        let mut live = session(&g, k);
        for ev in &events[..cut] {
            live.apply(ev).expect("generated events are valid");
        }
        let snap = live.snapshot();
        // The snapshot must survive the JSON round trip losslessly.
        let json = serde_json::to_string(&snap).expect("snapshots serialize");
        let back: ServeSnapshot = serde_json::from_str(&json).expect("snapshots parse");
        prop_assert_eq!(&back, &snap);

        let mut restored = ServeSession::restore(
            g.clone(),
            HopPricer::default(),
            policy(),
            ServeConfig::default(),
            &back,
        )
        .expect("session-produced snapshots restore");

        for ev in &events[cut..] {
            prop_assert_eq!(live.apply(ev), restored.apply(ev));
        }
        let a = live.telemetry();
        let b = restored.telemetry();
        prop_assert_eq!(replay_fields(&a), replay_fields(&b));
        prop_assert_eq!(b.snapshots_taken, 1);
        prop_assert_eq!(b.snapshots_restored, 1);
        live.engine().audit_now().expect("live session passes the audit");
        restored.engine().audit_now().expect("restored session passes the audit");
    }
}

/// Parses every output line back into a [`WireRecord`].
fn parse_output(out: &[u8]) -> Vec<WireRecord> {
    out.lines()
        .map(|l| {
            let l = l.expect("output is valid UTF-8 lines");
            serde_json::from_str(&l).expect("output lines are wire records")
        })
        .collect()
}

fn bye_of(records: &[WireRecord]) -> Telemetry {
    match records.last().expect("loop always emits records") {
        WireRecord::Bye { telemetry } => telemetry.clone(),
        other => panic!("last record must be Bye, got {other:?}"),
    }
}

/// The same restore property through the full NDJSON pipeline: run
/// the whole stream in one session (with a `"Snapshot"` control line
/// mid-stream), pipe the tail into a session restored from that
/// snapshot, and compare the `Bye` telemetry.
#[test]
fn ndjson_pipeline_snapshot_restore_roundtrip() {
    let mut rng = StdRng::seed_from_u64(2020);
    let g = erdos_renyi_connected(10, 0.3, &mut rng);
    let events = random_wire_events(&g, 42, 120);
    let cut = 60;

    let to_line = |ev: &WireEvent| serde_json::to_string(ev).expect("events serialize");
    let mut full = String::new();
    for ev in &events[..cut] {
        full.push_str(&to_line(ev));
        full.push('\n');
    }
    full.push_str("\"Snapshot\"\n");
    let mut tail = String::new();
    for ev in &events[cut..] {
        tail.push_str(&to_line(ev));
        tail.push('\n');
    }
    full.push_str(&tail);

    let mut live = session(&g, 3);
    let mut live_out = Vec::new();
    live.run(full.as_bytes(), &mut live_out)
        .expect("serve loop runs");
    let live_records = parse_output(&live_out);
    assert!(
        live_records
            .iter()
            .any(|r| matches!(r, WireRecord::Snapshot { .. })),
        "the Snapshot control line must be acknowledged"
    );
    // Every generated event is valid, so the snapshot sits exactly
    // at the cut.
    let snap = live.last_snapshot().expect("snapshot was retained").clone();
    assert_eq!(snap.events, cut as u64);

    let mut restored = ServeSession::restore(
        g.clone(),
        HopPricer::default(),
        policy(),
        ServeConfig::default(),
        &snap,
    )
    .expect("pipeline snapshots restore");
    let mut tail_out = Vec::new();
    restored
        .run(tail.as_bytes(), &mut tail_out)
        .expect("tail replay runs");

    let a = bye_of(&live_records);
    let b = bye_of(&parse_output(&tail_out));
    assert_eq!(replay_fields(&a), replay_fields(&b));
    assert_eq!(a.objective.to_bits(), b.objective.to_bits());
    assert_eq!(b.snapshots_restored, 1);
}

/// Bad JSON, unknown variants and engine-rejected events all come
/// back as `Rejected` records and the loop keeps going.
#[test]
fn bad_lines_are_rejected_without_killing_the_loop() {
    let g = DiGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1)]);
    let engine = OnlineEngine::new(g, 0.5, 1, HopPricer::default(), RepairPolicy::default())
        .expect("valid engine parameters");
    let mut s = ServeSession::new(engine, ServeConfig::default());
    let input = concat!(
        "this is not json\n",
        r#"{"Arrive":{"key":1,"rate":0,"path":[0,1,2]}}"#, // rate 0: engine rejects
        "\n",
        r#"{"Arrive":{"key":1,"rate":4,"path":[0,1,2]}}"#,
        "\n",
        r#"{"Arrive":{"key":1,"rate":4,"path":[0,1,2]}}"#, // duplicate key
        "\n",
        "\"Shutdown\"\n",
    );
    let mut out = Vec::new();
    s.run(input.as_bytes(), &mut out).expect("loop survives");
    let records = parse_output(&out);
    let rejected: Vec<u64> = records
        .iter()
        .filter_map(|r| match r {
            WireRecord::Rejected { line, .. } => Some(*line),
            _ => None,
        })
        .collect();
    assert_eq!(rejected, vec![1, 2, 4]);
    assert_eq!(s.events(), 1);
    let bye = bye_of(&records);
    assert_eq!(bye.active_flows, 1);
    assert_eq!(bye.tenants.len(), 1);
    assert_eq!(bye.tenants[0].served_bw, 4);
}

/// Periodic telemetry and snapshots fire on the configured schedule.
#[test]
fn periodic_telemetry_and_snapshots_fire_on_schedule() {
    let g = DiGraph::from_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]);
    let engine = OnlineEngine::new(g, 0.5, 1, HopPricer::default(), RepairPolicy::default())
        .expect("valid engine parameters");
    let mut s = ServeSession::new(
        engine,
        ServeConfig {
            telemetry_every: 2,
            snapshot_every: 3,
            snapshot_path: None,
        },
    );
    let mut input = String::new();
    for key in 0..6u64 {
        input.push_str(&format!(
            r#"{{"Arrive":{{"key":{key},"rate":1,"path":[0,1,2,3],"tenant":{t}}}}}"#,
            t = key % 2,
        ));
        input.push('\n');
    }
    let mut out = Vec::new();
    s.run(input.as_bytes(), &mut out).expect("loop runs");
    let records = parse_output(&out);
    let telemetry_ticks = records
        .iter()
        .filter(|r| matches!(r, WireRecord::Telemetry { .. }))
        .count();
    let snapshot_ticks = records
        .iter()
        .filter(|r| matches!(r, WireRecord::Snapshot { .. }))
        .count();
    assert_eq!(telemetry_ticks, 3); // events 2, 4, 6
    assert_eq!(snapshot_ticks, 2); // events 3, 6
    let bye = bye_of(&records);
    assert_eq!(bye.events, 6);
    assert_eq!(bye.snapshots_taken, 2);
    assert_eq!(bye.tenants.len(), 2);
    // Per-tenant latency percentiles exist once a tenant has events.
    assert!(bye.tenants.iter().all(|t| t.apply_p50_us.is_some()));
}
