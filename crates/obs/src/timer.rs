//! [`Stopwatch`] — monotonic span timer.

use std::time::Instant;

/// A started span timer over the monotonic clock.
///
/// Thin wrapper over [`Instant`] whose accessors return the units the
/// telemetry layer traffics in (µs/ms as `f64`), so call sites never
/// repeat the `as_secs_f64() * 1e6` dance.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Self(Instant::now())
    }

    /// Microseconds elapsed since start.
    #[inline]
    pub fn elapsed_us(&self) -> f64 {
        self.0.elapsed().as_secs_f64() * 1e6
    }

    /// Milliseconds elapsed since start.
    #[inline]
    pub fn elapsed_ms(&self) -> f64 {
        self.0.elapsed().as_secs_f64() * 1e3
    }

    /// Seconds elapsed since start.
    #[inline]
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone_and_unit_consistent() {
        let sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let us = sw.elapsed_us();
        let ms = sw.elapsed_ms();
        assert!(us >= 2_000.0, "slept 2ms but measured {us}µs");
        assert!(ms >= 2.0);
        assert!(sw.elapsed_us() >= us, "monotone");
    }
}
