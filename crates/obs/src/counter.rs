//! [`Counter`] — a relaxed atomic event counter.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic event counter safe to bump from any thread.
///
/// All operations use `Relaxed` ordering: counts are telemetry, not
/// synchronization, and readers only ever see them at quiescent
/// points (snapshots between solver runs).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Zeroed counter, usable in `static` position.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero, returning the previous value.
    pub fn reset(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_resets() {
        let c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
        assert_eq!(c.reset(), 42);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn concurrent_increments_never_lose_updates() {
        // Real OS threads (the vendored rayon stand-in is sequential,
        // so it alone cannot exercise contention).
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn rayon_style_parallel_iteration_counts_exactly() {
        use rayon::prelude::*;
        let c = Counter::new();
        (0..1000u64).collect::<Vec<_>>().par_iter().for_each(|_| {
            c.incr();
        });
        assert_eq!(c.get(), 1000);
    }
}
