//! The telemetry key registry — the stable schema of every metric the
//! workspace records through a [`Recorder`](crate::Recorder).
//!
//! Every key a crate passes to [`Recorder::count`](crate::Recorder::count)
//! or [`Recorder::sample`](crate::Recorder::sample) must be a constant
//! from this module, and every constant here must be emitted somewhere:
//! the `cargo xtask lint` `obs-keys` rule checks both directions, and a
//! golden test pins [`ALL`] so renames are a deliberate schema change
//! (the keys surface verbatim in the `tdmd bench` stream JSON).

/// Sample: wall-clock µs of one full online-engine event application
/// (event ingestion + repair).
pub const EVENT_APPLY_US: &str = "event_apply_us";
/// Sample: wall-clock µs of one post-event repair pass.
pub const REPAIR_US: &str = "repair_us";
/// Sample: wall-clock µs of one drift-oracle solve (sampled events
/// only).
pub const REPLAN_US: &str = "replan_us";
/// Counter: arrival events applied.
pub const ARRIVALS: &str = "arrivals";
/// Counter: departure events applied.
pub const DEPARTURES: &str = "departures";
/// Counter: oracle deployments adopted (replans).
pub const REPLANS: &str = "replans";
/// Counter: failure events applied (middlebox failures + vertex-down
/// events).
pub const FAILURES: &str = "failures";
/// Counter: recovery events applied.
pub const RECOVERIES: &str = "recoveries";
/// Counter: flows orphaned by failures (re-pinned or degraded).
pub const FLOWS_ORPHANED: &str = "flows_orphaned";
/// Counter: orphaned flows left degraded (no surviving on-path
/// middlebox at the instant of the failure).
pub const FLOWS_DEGRADED: &str = "flows_degraded";
/// Sample: wall-clock µs of the repair pass following a failure event
/// (a subset of [`REPAIR_US`]) — the repair-latency histogram of the
/// chaos harness.
pub const FAILURE_REPAIR_US: &str = "failure_repair_us";
/// Counter: flow route changes applied by the joint routing +
/// placement solver (active-path switches across all rounds).
pub const PATH_SWITCHES: &str = "path_switches";
/// Counter: GTP placement rounds run by the joint solver's
/// alternation loop (across both of its warm starts).
pub const JOINT_ROUNDS: &str = "joint_rounds";
/// Sample: wall-clock µs of one flownet LP-relaxation lower-bound
/// computation (the joint solver's optimality-gap certificate).
pub const LP_BOUND_US: &str = "lp_bound_us";
/// Sample: wall-clock µs of one `tdmd serve` event-loop iteration
/// (wire decode + engine apply + telemetry accounting).
pub const SERVE_EVENT_US: &str = "serve_event_us";
/// Counter: engine state snapshots taken by the serve loop.
pub const SNAPSHOTS_TAKEN: &str = "snapshots_taken";
/// Counter: engine state snapshots restored into a serve session.
pub const SNAPSHOTS_RESTORED: &str = "snapshots_restored";
/// Sample: per-tenant served bandwidth (rate units currently assigned
/// to a live middlebox), one sample per tenant per telemetry tick.
pub const TENANT_SERVED_BW: &str = "tenant_served_bw";
/// Sample: per-tenant degraded bandwidth (rate units of flows with no
/// assigned middlebox), one sample per tenant per telemetry tick.
pub const TENANT_DEGRADED_BW: &str = "tenant_degraded_bw";
/// Counter: event batches applied through the online engine's batched
/// path (`apply_batch` — one repair pass per batch).
pub const BATCHES: &str = "batches";
/// Sample: wall-clock µs of one whole `apply_batch` call (all event
/// ingestions + the single batch-boundary repair pass).
pub const BATCH_APPLY_US: &str = "batch_apply_us";
/// Counter: middleboxes deployed or undeployed by chargeable repair
/// moves (greedy adds, both legs of a swap, the symmetric difference
/// of an adopted replan; free zero-load drops are exempt).
pub const BOXES_MOVED: &str = "boxes_moved";
/// Counter: flow→middlebox assignment changes caused by chargeable
/// repair moves (failure-induced orphaning is not charged — it is not
/// a reconfiguration the engine chose).
pub const FLOWS_REASSIGNED: &str = "flows_reassigned";
/// Counter: repair moves (adds, swaps or replans) skipped because the
/// reconfiguration token bucket could not cover their migration cost.
pub const BUDGET_DEFERRALS: &str = "budget_deferrals";
/// Sample: migration cost debited from the reconfiguration token
/// bucket by one chargeable repair move.
pub const BUDGET_SPEND: &str = "budget_spend";

/// Every registered key, in registration order. The golden test and
/// the `obs-keys` lint rule both walk this slice.
pub const ALL: &[&str] = &[
    EVENT_APPLY_US,
    REPAIR_US,
    REPLAN_US,
    ARRIVALS,
    DEPARTURES,
    REPLANS,
    FAILURES,
    RECOVERIES,
    FLOWS_ORPHANED,
    FLOWS_DEGRADED,
    FAILURE_REPAIR_US,
    PATH_SWITCHES,
    JOINT_ROUNDS,
    LP_BOUND_US,
    SERVE_EVENT_US,
    SNAPSHOTS_TAKEN,
    SNAPSHOTS_RESTORED,
    TENANT_SERVED_BW,
    TENANT_DEGRADED_BW,
    BATCHES,
    BATCH_APPLY_US,
    BOXES_MOVED,
    FLOWS_REASSIGNED,
    BUDGET_DEFERRALS,
    BUDGET_SPEND,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_duplicate_free() {
        let mut sorted: Vec<&str> = ALL.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ALL.len(), "duplicate key in registry");
    }

    #[test]
    fn keys_are_snake_case_identifiers() {
        for key in ALL {
            assert!(
                key.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "key {key:?} is not snake_case"
            );
        }
    }
}
