//! # tdmd-obs — always-compiled solver telemetry
//!
//! Machine-readable counters and timers for the placement engines,
//! cheap enough to leave compiled into every hot path:
//!
//! * [`Counter`] — a relaxed [`AtomicU64`](std::sync::atomic::AtomicU64)
//!   wrapper; one `fetch_add` per increment, safe to bump from rayon
//!   workers.
//! * [`Histogram`] — a log₂-bucketed atomic latency histogram with a
//!   bounded footprint (65 buckets), for per-event timings whose
//!   sample count is unbounded.
//! * [`Stopwatch`] — a monotonic-clock span timer
//!   ([`Instant`](std::time::Instant)-based, never affected by wall
//!   clock adjustments).
//! * [`Recorder`] — the sink trait instrumented code reports through.
//!   The default [`NoopRecorder`] has [`Recorder::ENABLED`]` = false`
//!   and empty inlined methods, so a monomorphized hot path costs
//!   nothing when telemetry is off; [`StatsRecorder`] collects named
//!   counters and raw samples for exact percentile reporting.
//! * [`percentile`] — exact nearest-rank percentile over a sorted
//!   sample (the one true implementation; callers must not hand-roll
//!   it), and [`percentile_opt`], its `Option`-shaped wrapper that
//!   keeps empty samples from masquerading as a measured `0.0`.
//! * [`normalize_zero`] — collapses IEEE `-0.0` to `+0.0` at
//!   formatting boundaries so objective sums never print as `-0.00`.
//! * [`round_metric`] — fixed-precision rounding (plus the signed-zero
//!   collapse) for latency/wall-clock/throughput metrics at the
//!   serialization boundary, so committed bench JSON carries `8.55`
//!   rather than `8.549999999999999`.
//!
//! The crate is deliberately dependency-free; serialization of
//! snapshots (e.g. the `tdmd bench` JSON) is the caller's concern.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counter;
mod hist;
pub mod keys;
mod recorder;
mod timer;

pub use counter::Counter;
pub use hist::{Histogram, HistogramSnapshot};
pub use recorder::{NoopRecorder, Recorder, StatsRecorder};
pub use timer::Stopwatch;

/// Exact nearest-rank percentile of an ascending-sorted sample.
///
/// `p` is in percent (`0.0..=100.0`); `p = 0` returns the minimum,
/// `p = 100` the maximum. Out-of-range `p` is clamped (and rejected by
/// a debug assertion), as are unsorted or NaN-bearing inputs — both
/// would silently return a wrong rank, which is exactly the bug class
/// this function exists to prevent.
///
/// An empty sample yields the sentinel `0.0` — never NaN — which keeps
/// legacy aggregate reports finite but is indistinguishable from a
/// genuine zero-valued sample. Callers that must tell "no data" apart
/// from "measured zero" (per-tenant fairness reporting, where a tenant
/// may simply have no flows yet) should use [`percentile_opt`].
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(
        (0.0..=100.0).contains(&p),
        "percentile {p} outside [0, 100]"
    );
    debug_assert!(
        sorted.iter().all(|x| !x.is_nan()),
        "NaN in percentile sample"
    );
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "percentile sample is not sorted ascending"
    );
    if sorted.is_empty() {
        return 0.0;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// [`percentile`] with an honest empty case: `None` when the sample is
/// empty, `Some(percentile(..))` otherwise.
///
/// Use this wherever an absent measurement must not masquerade as a
/// measured `0.0` — e.g. per-tenant latency percentiles, where a
/// tenant with no repaired flows has no latency, not a zero one. The
/// same input-validity debug assertions as [`percentile`] apply, and
/// the returned value is never NaN for NaN-free input.
#[inline]
pub fn percentile_opt(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() {
        None
    } else {
        Some(percentile(sorted, p))
    }
}

/// Collapses signed zero: `-0.0` formats as `-0.00`, which reads as a
/// (nonexistent) negative objective. Apply at the formatting boundary
/// of any `f64` produced by summation. Every other value — including
/// NaN — passes through unchanged.
#[inline]
pub fn normalize_zero(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else {
        x
    }
}

/// Rounds a measured metric (latency, wall-clock, throughput) to
/// `decimals` fractional digits for serialization, collapsing signed
/// zero like [`normalize_zero`]. Percentile interpolation and µs→s
/// conversions leave float noise (`8.549999999999999`) that would
/// churn committed JSON artifacts meaninglessly; rounding to the
/// nearest representable of the `decimals`-digit value makes the
/// serialized shortest-round-trip representation the human-scale one
/// (`8.55`). Not for objective values — those are exact sums whose
/// full precision is the point. Non-finite values pass through
/// unchanged.
#[inline]
pub fn round_metric(x: f64, decimals: u32) -> f64 {
    if !x.is_finite() {
        return x;
    }
    let scale = 10f64.powi(decimals.min(12).try_into().unwrap_or(12));
    normalize_zero((x * scale).round() / scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank_endpoints() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&s, 0.0), 1.0, "p=0 is the minimum");
        assert_eq!(percentile(&s, 100.0), 4.0, "p=100 is the maximum");
        assert_eq!(percentile(&s, 50.0), 2.0);
        assert_eq!(percentile(&s, 75.0), 3.0);
        assert_eq!(percentile(&s, 76.0), 4.0);
    }

    #[test]
    fn percentile_single_sample_is_that_sample() {
        for p in [0.0, 37.5, 50.0, 99.0, 100.0] {
            assert_eq!(percentile(&[42.0], p), 42.0, "p={p}");
        }
    }

    #[test]
    fn percentile_empty_sample_is_zero() {
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentile_opt_distinguishes_empty_from_zero() {
        // The safe wrapper reports "no data" as None, never as the
        // bare-percentile 0.0 sentinel, and never as NaN.
        assert_eq!(percentile_opt(&[], 50.0), None);
        assert_eq!(percentile_opt(&[0.0], 50.0), Some(0.0));
        assert_eq!(percentile_opt(&[1.0, 2.0, 3.0, 4.0], 75.0), Some(3.0));
        assert_eq!(percentile_opt(&[1.0, 2.0, 3.0, 4.0], 0.0), Some(1.0));
        for p in [0.0, 50.0, 100.0] {
            assert!(!percentile_opt(&[], p).is_some_and(f64::is_nan));
        }
    }

    // The rejection tests only exist in debug builds, where the
    // debug_asserts fire; release builds clamp / pass through instead.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "outside [0, 100]")]
    fn percentile_rejects_out_of_range_p() {
        let _ = percentile(&[1.0, 2.0], 150.0);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn percentile_clamps_out_of_range_p_in_release() {
        assert_eq!(percentile(&[1.0, 2.0], 150.0), 2.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "NaN in percentile sample")]
    fn percentile_rejects_nan_samples() {
        let _ = percentile(&[1.0, f64::NAN], 50.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not sorted")]
    fn percentile_rejects_unsorted_samples() {
        let _ = percentile(&[3.0, 1.0], 50.0);
    }

    #[test]
    fn normalize_zero_fixes_negative_zero_only() {
        assert_eq!(normalize_zero(-0.0).to_bits(), 0.0f64.to_bits());
        assert_eq!(format!("{:.2}", normalize_zero(-0.0)), "0.00");
        assert_eq!(normalize_zero(1.5), 1.5);
        assert_eq!(normalize_zero(-1.5), -1.5);
        assert!(normalize_zero(f64::NAN).is_nan());
    }
}
