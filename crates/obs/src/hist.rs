//! [`Histogram`] — bounded-footprint atomic latency histogram.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ buckets: bucket 0 holds values in `[0, 1)`, bucket
/// `i ≥ 1` holds `[2^(i−1), 2^i)`, and the last bucket is unbounded.
const BUCKETS: usize = 65;

/// Log₂-bucketed histogram of non-negative samples (typically
/// microsecond latencies), updatable concurrently with relaxed
/// atomics and O(1) memory regardless of sample count.
///
/// Quantiles read from bucket boundaries are upper bounds with at
/// most 2× relative error — enough to spot an order-of-magnitude
/// regression; exact percentiles over raw samples live in
/// [`StatsRecorder`](crate::StatsRecorder) / [`crate::percentile`].
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    /// Sum of samples, rounded to integral units.
    sum: AtomicU64,
    /// Bit pattern of the maximum sample (non-negative f64 bit
    /// patterns order like the floats themselves).
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram, usable in `static` position.
    pub const fn new() -> Self {
        // `[const { ... }; N]` inline-const array repetition.
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max_bits: AtomicU64::new(0),
        }
    }

    fn bucket_of(value: f64) -> usize {
        let v = value.max(0.0) as u64;
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
        }
    }

    /// Records one sample. Negative and NaN samples clamp to zero
    /// (latencies cannot be negative; clamping keeps the hot path
    /// branch-free of error handling).
    pub fn record(&self, value: f64) {
        let v = if value.is_finite() {
            value.max(0.0)
        } else {
            0.0
        };
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v.round() as u64, Ordering::Relaxed);
        self.max_bits.fetch_max(v.to_bits(), Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent point-in-time copy (consistent at quiescence; under
    /// concurrent writers each field is individually atomic).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.each_ref().map(|b| b.load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed) as f64,
            max: f64::from_bits(self.max_bits.load(Ordering::Relaxed)),
        }
    }

    /// Resets every bucket and aggregate to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max_bits.store(0, Ordering::Relaxed);
    }
}

/// Immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`Histogram`] for the bucket bounds).
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of samples (rounded per sample).
    pub sum: f64,
    /// Largest sample seen.
    pub max: f64,
}

impl HistogramSnapshot {
    /// Mean sample, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the nearest-rank `p`-th
    /// percentile (0 when empty). At most one bucket (2×) above the
    /// exact value.
    pub fn quantile_upper(&self, p: f64) -> f64 {
        debug_assert!((0.0..=100.0).contains(&p), "quantile {p} outside [0, 100]");
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * self.count as f64)
            .ceil()
            .max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bound of bucket i: 2^i (bucket 0 is [0, 1)).
                return if i == 0 { 1.0 } else { (1u128 << i) as f64 };
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_follow_log2_bounds() {
        assert_eq!(Histogram::bucket_of(0.0), 0);
        assert_eq!(Histogram::bucket_of(0.9), 0);
        assert_eq!(Histogram::bucket_of(1.0), 1);
        assert_eq!(Histogram::bucket_of(2.0), 2);
        assert_eq!(Histogram::bucket_of(3.0), 2);
        assert_eq!(Histogram::bucket_of(4.0), 3);
        assert_eq!(Histogram::bucket_of(1024.0), 11);
        assert_eq!(Histogram::bucket_of(f64::MAX), BUCKETS - 1);
    }

    #[test]
    fn aggregates_and_quantiles() {
        let h = Histogram::new();
        for v in [0.5, 1.5, 2.5, 100.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.sum, 1.0 + 2.0 + 3.0 + 100.0, "half rounds away from zero");
        assert_eq!(s.quantile_upper(0.0), 1.0, "min is in [0, 1)");
        // p50 rank 2 → sample 1.5 → bucket [1, 2) → upper bound 2.
        assert_eq!(s.quantile_upper(50.0), 2.0);
        // p100 → 100.0 → bucket [64, 128) → upper bound 128.
        assert_eq!(s.quantile_upper(100.0), 128.0);
    }

    #[test]
    fn degenerate_samples_clamp_to_zero() {
        let h = Histogram::new();
        h.record(-5.0);
        h.record(f64::NAN);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn concurrent_records_preserve_totals() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..5_000u32 {
                        h.record((t * 5_000 + i) as f64);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 20_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 20_000);
        assert_eq!(s.max, 19_999.0);
    }

    #[test]
    fn reset_empties_everything() {
        let h = Histogram::new();
        h.record(7.0);
        h.reset();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile_upper(99.0), 0.0);
        assert_eq!(s.mean(), 0.0);
    }
}
