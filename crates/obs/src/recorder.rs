//! The [`Recorder`] sink trait and its two canonical implementations.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Sink for named telemetry emitted by instrumented code.
///
/// Instrumented hot paths are generic over `R: Recorder` and default
/// to [`NoopRecorder`]; its methods are empty `#[inline]` bodies and
/// [`Recorder::ENABLED`] is `false`, so monomorphization erases both
/// the calls *and* any clock reads guarded by `R::ENABLED` — the
/// disabled configuration costs literally nothing.
///
/// Names are `&'static str` by design: they form the stable telemetry
/// schema (the `tdmd bench` JSON keys), not free-form strings.
pub trait Recorder: Sync {
    /// Whether this recorder consumes events. Instrumentation guards
    /// expensive measurements (e.g. `Instant::now()`) behind this
    /// constant so disabled telemetry skips them entirely.
    const ENABLED: bool = true;

    /// Adds `delta` to the named counter.
    fn count(&self, name: &'static str, delta: u64);

    /// Records one sample (e.g. a span latency in µs) under `name`.
    fn sample(&self, name: &'static str, value: f64);
}

/// The default recorder: ignores everything at zero cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn count(&self, _name: &'static str, _delta: u64) {}

    #[inline(always)]
    fn sample(&self, _name: &'static str, _value: f64) {}
}

impl<R: Recorder> Recorder for &R {
    const ENABLED: bool = R::ENABLED;

    #[inline]
    fn count(&self, name: &'static str, delta: u64) {
        (**self).count(name, delta);
    }

    #[inline]
    fn sample(&self, name: &'static str, value: f64) {
        (**self).sample(name, value);
    }
}

/// Collecting recorder: named counters plus raw sample vectors, for
/// exact percentile reporting after a run. Mutex-guarded maps — this
/// is the *enabled* path, used by benches and the CLI, where a lock
/// per event is dwarfed by the event itself. A poisoned lock (a
/// panicked writer) is survivable — the maps hold only monotone
/// telemetry, never partially-updated pairs — so every lock recovers
/// the inner value rather than unwrapping.
#[derive(Debug, Default)]
pub struct StatsRecorder {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    samples: Mutex<BTreeMap<&'static str, Vec<f64>>>,
}

impl StatsRecorder {
    /// Empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Value of a named counter (0 if never counted).
    pub fn counter(&self, name: &str) -> u64 {
        *self
            .counters
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(name)
            .unwrap_or(&0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect()
    }

    /// Ascending-sorted copy of the named sample vector (empty if the
    /// name was never sampled). Sorted with `total_cmp`, ready for
    /// [`crate::percentile`].
    pub fn sorted_samples(&self, name: &str) -> Vec<f64> {
        let mut v = self
            .samples
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(name)
            .cloned()
            .unwrap_or_default();
        v.sort_by(f64::total_cmp);
        v
    }

    /// Exact nearest-rank percentile of the named samples, or `None`
    /// when nothing was sampled under that name.
    pub fn percentile_of(&self, name: &str, p: f64) -> Option<f64> {
        let sorted = self.sorted_samples(name);
        if sorted.is_empty() {
            None
        } else {
            Some(crate::percentile(&sorted, p))
        }
    }

    /// Number of samples recorded under `name`.
    pub fn sample_count(&self, name: &str) -> usize {
        self.samples
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(name)
            .map_or(0, Vec::len)
    }
}

impl Recorder for StatsRecorder {
    fn count(&self, name: &'static str, delta: u64) {
        *self
            .counters
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .entry(name)
            .or_insert(0) += delta;
    }

    fn sample(&self, name: &'static str, value: f64) {
        self.samples
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .entry(name)
            .or_default()
            .push(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_is_statically_disabled() {
        // Checked at compile time: the flag (and its forwarding
        // through &R) is what erases guarded clock reads.
        const {
            assert!(!NoopRecorder::ENABLED);
            assert!(!<&NoopRecorder as Recorder>::ENABLED);
        }
        // Calls are accepted and discard everything.
        NoopRecorder.count("x", 5);
        NoopRecorder.sample("y", 1.0);
    }

    #[test]
    fn stats_recorder_accumulates_counters_and_samples() {
        let r = StatsRecorder::new();
        r.count("evals", 2);
        r.count("evals", 3);
        r.sample("lat", 30.0);
        r.sample("lat", 10.0);
        r.sample("lat", 20.0);
        assert_eq!(r.counter("evals"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.sorted_samples("lat"), vec![10.0, 20.0, 30.0]);
        assert_eq!(r.percentile_of("lat", 50.0), Some(20.0));
        assert_eq!(r.percentile_of("missing", 50.0), None);
        assert_eq!(r.counters(), vec![("evals".to_string(), 5)]);
    }

    #[test]
    fn stats_recorder_is_thread_safe() {
        let r = StatsRecorder::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = &r;
                s.spawn(move || {
                    for i in 0..2_500 {
                        r.count("n", 1);
                        r.sample("v", i as f64);
                    }
                });
            }
        });
        assert_eq!(r.counter("n"), 10_000);
        assert_eq!(r.sample_count("v"), 10_000);
    }

    #[test]
    fn reference_recorder_forwards() {
        let r = StatsRecorder::new();
        let by_ref: &StatsRecorder = &r;
        by_ref.count("c", 1);
        by_ref.sample("s", 2.0);
        assert_eq!(r.counter("c"), 1);
        assert_eq!(r.sample_count("s"), 1);
    }
}
