//! Golden pin of the telemetry key registry.
//!
//! The `obs-keys` xtask lint rule and every dashboard/export consumer
//! treat these strings as a stable wire format: renaming or reordering
//! a key is a breaking change and must update this pin deliberately.

use tdmd_obs::keys;

#[test]
fn registry_matches_the_golden_list() {
    assert_eq!(
        keys::ALL,
        [
            "event_apply_us",
            "repair_us",
            "replan_us",
            "arrivals",
            "departures",
            "replans",
            "failures",
            "recoveries",
            "flows_orphaned",
            "flows_degraded",
            "failure_repair_us",
            "path_switches",
            "joint_rounds",
            "lp_bound_us",
            "serve_event_us",
            "snapshots_taken",
            "snapshots_restored",
            "tenant_served_bw",
            "tenant_degraded_bw",
            "batches",
            "batch_apply_us",
            "boxes_moved",
            "flows_reassigned",
            "budget_deferrals",
            "budget_spend",
        ]
    );
}

#[test]
fn named_constants_point_into_the_registry() {
    for key in [
        keys::EVENT_APPLY_US,
        keys::REPAIR_US,
        keys::REPLAN_US,
        keys::ARRIVALS,
        keys::DEPARTURES,
        keys::REPLANS,
        keys::FAILURES,
        keys::RECOVERIES,
        keys::FLOWS_ORPHANED,
        keys::FLOWS_DEGRADED,
        keys::FAILURE_REPAIR_US,
        keys::PATH_SWITCHES,
        keys::JOINT_ROUNDS,
        keys::LP_BOUND_US,
        keys::SERVE_EVENT_US,
        keys::SNAPSHOTS_TAKEN,
        keys::SNAPSHOTS_RESTORED,
        keys::TENANT_SERVED_BW,
        keys::TENANT_DEGRADED_BW,
        keys::BATCHES,
        keys::BATCH_APPLY_US,
        keys::BOXES_MOVED,
        keys::FLOWS_REASSIGNED,
        keys::BUDGET_DEFERRALS,
        keys::BUDGET_SPEND,
    ] {
        assert!(keys::ALL.contains(&key), "{key} missing from keys::ALL");
    }
}
