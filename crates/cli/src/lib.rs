//! # tdmd-cli — library half of the `tdmd` command-line front end
//!
//! Flag parsing and command implementations, kept out of `main.rs` so
//! they are unit-testable (every command is a `fn(&Args) -> Result<
//! String, String>` returning its stdout payload).
//!
//! * [`args`] — the zero-dependency `--flag value` parser.
//! * [`commands::topo`] — `tdmd topo gen|stats|dot`: topology
//!   generation (tree / Ark-like / ER), stats, Graphviz export.
//! * [`commands::workload`] — `tdmd workload gen`: seeded flow sets.
//! * [`commands::place`] / [`commands::evaluate`] — `tdmd place` /
//!   `tdmd evaluate`: run a placement algorithm, score a saved plan.
//! * [`commands::chain`] — `tdmd chain place`: the service-chain
//!   extension.
//! * [`commands::stream`] — `tdmd stream gen|run|inject`: span-file
//!   generation, churn replay through the online engine, and seeded
//!   fault injection with degradation/repair reporting.
//! * [`commands::serve`] — `tdmd serve gen|run`: multi-tenant NDJSON
//!   event-stream generation and the long-running placement service
//!   (`tdmd-serve`), with snapshot/restore across runs.
//! * [`commands::bench`] — `tdmd bench`: the machine-readable solver
//!   and stream benchmark JSON (`tdmd-bench-solve/v1`,
//!   `tdmd-bench-stream/v1`, `tdmd-bench-joint/v1`,
//!   `tdmd-bench-serve/v1`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
