//! Library half of the `tdmd` CLI: flag parsing and command
//! implementations, kept out of `main.rs` so they are unit-testable.

pub mod args;
pub mod commands;
