//! `tdmd` — command-line front end for the TDMD library.
//!
//! ```text
//! tdmd topo gen --kind ark --size 30 --seed 1 --out topo.json
//! tdmd topo stats --in topo.json
//! tdmd topo dot --in topo.json --highlight 0,4 --out topo.dot
//! tdmd workload gen --topo topo.json --dests 0,1 --density 0.5 --seed 2 --out wl.json
//! tdmd place --topo topo.json --workload wl.json --lambda 0.5 --k 8 \
//!            --algorithm gtp --out plan.json
//! tdmd solve --topo topo.json --workload wl.json --lambda 0.5 --k 8 \
//!            --algorithm gtp --routing joint --k-paths 3 --audit true
//! tdmd evaluate --topo topo.json --workload wl.json --lambda 0.5 --k 8 --plan plan.json
//! tdmd stream gen --workload wl.json --duration 100000 --seed 3 --out spans.json
//! tdmd stream run --topo topo.json --spans spans.json --lambda 0.5 --k 8 \
//!                 --policy incremental --oracle-every 64
//! tdmd stream inject --topo topo.json --spans spans.json --lambda 0.5 --k 8 \
//!                    --mode targeted --period-us 5000 --mttr-us 2000 --seed 4
//! tdmd serve gen --topo topo.json --tenants 3 --duration 100000 --seed 5 \
//!                --out events.ndjson
//! tdmd serve run --topo topo.json --lambda 0.5 --k 8 --in events.ndjson \
//!                --snapshot-every 1000 --snapshot-path state.json
//! tdmd bench --seed 42 --out-dir bench-out
//! tdmd race --seeds 1,2,3,4 --threads 4
//! ```

#![forbid(unsafe_code)]

use tdmd_cli::args::Args;
use tdmd_cli::commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn run(argv: &[String]) -> Result<String, String> {
    let (command, rest) = argv.split_first().ok_or_else(usage)?;
    match command.as_str() {
        "topo" => {
            let (sub, rest) = rest.split_first().ok_or_else(usage)?;
            let args = Args::parse(rest)?;
            match sub.as_str() {
                "gen" => commands::topo::generate(&args),
                "stats" => commands::topo::stats(&args),
                "dot" => commands::topo::dot(&args),
                other => Err(format!("unknown topo subcommand '{other}'")),
            }
        }
        "workload" => {
            let (sub, rest) = rest.split_first().ok_or_else(usage)?;
            let args = Args::parse(rest)?;
            match sub.as_str() {
                "gen" => commands::workload::generate(&args),
                other => Err(format!("unknown workload subcommand '{other}'")),
            }
        }
        "chain" => {
            let (sub, rest) = rest.split_first().ok_or_else(usage)?;
            let args = Args::parse(rest)?;
            match sub.as_str() {
                "place" => commands::chain::place(&args),
                other => Err(format!("unknown chain subcommand '{other}'")),
            }
        }
        "stream" => {
            let (sub, rest) = rest.split_first().ok_or_else(usage)?;
            let args = Args::parse(rest)?;
            match sub.as_str() {
                "gen" => commands::stream::generate(&args),
                "run" => commands::stream::run(&args),
                "inject" => commands::stream::inject(&args),
                other => Err(format!("unknown stream subcommand '{other}'")),
            }
        }
        "serve" => {
            let (sub, rest) = rest.split_first().ok_or_else(usage)?;
            let args = Args::parse(rest)?;
            match sub.as_str() {
                "gen" => commands::serve::generate(&args),
                "run" => commands::serve::run(&args),
                other => Err(format!("unknown serve subcommand '{other}'")),
            }
        }
        "place" | "solve" => commands::place::place(&Args::parse(rest)?),
        "evaluate" => commands::evaluate::evaluate(&Args::parse(rest)?),
        "bench" => commands::bench::bench(&Args::parse(rest)?),
        "race" => commands::race::run(&Args::parse(rest)?),
        "--help" | "-h" | "help" => Ok(usage()),
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: tdmd <topo gen|topo stats|topo dot|workload gen|place (alias: solve)|\
     evaluate|chain place|stream gen|stream run|stream inject|serve gen|serve run|\
     bench|race> [--flag value ...]\n\
     pass --audit true to place/solve and stream run to re-validate the structural\n\
     invariants (see tdmd-core::audit); see the crate docs for the full flag list"
        .to_string()
}
