//! Tiny `--flag value` argument parser (no external dependency).

use std::collections::BTreeMap;

/// Parsed `--key value` pairs.
#[derive(Debug, Clone, Default)]
pub struct Args {
    map: BTreeMap<String, String>,
}

impl Args {
    /// Parses a flat `--key value --key2 value2` list.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut map = BTreeMap::new();
        let mut it = argv.iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("expected --flag, got '{key}'"));
            };
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            map.insert(name.to_string(), value.clone());
        }
        Ok(Self { map })
    }

    /// Required string flag.
    pub fn required(&self, name: &str) -> Result<&str, String> {
        self.map
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// Optional string flag.
    pub fn optional(&self, name: &str) -> Option<&str> {
        self.map.get(name).map(String::as_str)
    }

    /// Parsed numeric flag with a default.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.map.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse '{v}'")),
        }
    }

    /// Required numeric flag.
    pub fn num_required<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        let v = self.required(name)?;
        v.parse()
            .map_err(|_| format!("--{name}: cannot parse '{v}'"))
    }

    /// Boolean flag (`--name true|false`), defaulting to `false` when
    /// absent.
    pub fn flag(&self, name: &str) -> Result<bool, String> {
        match self.map.get(name).map(String::as_str) {
            None => Ok(false),
            Some("true") | Some("1") | Some("yes") | Some("on") => Ok(true),
            Some("false") | Some("0") | Some("no") | Some("off") => Ok(false),
            Some(v) => Err(format!("--{name}: expected true|false, got '{v}'")),
        }
    }

    /// Comma-separated list of u32 ids.
    pub fn id_list(&self, name: &str) -> Result<Vec<u32>, String> {
        match self.map.get(name) {
            None => Ok(Vec::new()),
            Some(v) => v
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| {
                    s.trim()
                        .parse()
                        .map_err(|_| format!("--{name}: bad id '{s}'"))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flag_pairs() {
        let a = Args::parse(&argv(&["--size", "30", "--kind", "ark"])).unwrap();
        assert_eq!(a.required("size").unwrap(), "30");
        assert_eq!(a.required("kind").unwrap(), "ark");
        assert_eq!(a.num::<usize>("size", 0).unwrap(), 30);
        assert_eq!(a.num::<usize>("missing", 7).unwrap(), 7);
    }

    #[test]
    fn rejects_positional_and_dangling() {
        assert!(Args::parse(&argv(&["size"])).is_err());
        assert!(Args::parse(&argv(&["--size"])).is_err());
    }

    #[test]
    fn missing_required_is_an_error() {
        let a = Args::parse(&argv(&[])).unwrap();
        assert!(a.required("x").unwrap_err().contains("--x"));
        assert!(a.num_required::<u64>("x").is_err());
    }

    #[test]
    fn bad_numbers_are_reported() {
        let a = Args::parse(&argv(&["--k", "banana"])).unwrap();
        assert!(a.num::<usize>("k", 1).unwrap_err().contains("banana"));
    }

    #[test]
    fn id_lists() {
        let a = Args::parse(&argv(&["--dests", "0, 3,7"])).unwrap();
        assert_eq!(a.id_list("dests").unwrap(), vec![0, 3, 7]);
        assert_eq!(a.id_list("none").unwrap(), Vec::<u32>::new());
        let bad = Args::parse(&argv(&["--dests", "1,x"])).unwrap();
        assert!(bad.id_list("dests").is_err());
    }
}
