//! `tdmd workload gen`.

use crate::args::Args;
use crate::commands::{load_topology, write_out};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tdmd_graph::RootedTree;
use tdmd_traffic::distribution::RateDistribution;
use tdmd_traffic::generator::WorkloadSize;
use tdmd_traffic::{general_workload, tree_workload, WorkloadConfig};

/// `tdmd workload gen --topo t.json (--density D | --count N)
/// [--dests 0,1 | --root 0] [--rates caida|constant:R|uniform:LO:HI]
/// [--seed S] --out wl.json`
///
/// With `--dests`, flows route to random destinations over shortest
/// paths (general mode); with `--root`, the topology must be a tree
/// and flows go leaf → root.
pub fn generate(args: &Args) -> Result<String, String> {
    let g = load_topology(args.required("topo")?)?;
    let out = args.required("out")?;
    let seed: u64 = args.num("seed", 0)?;
    let mut rng = StdRng::seed_from_u64(seed);

    let size = match (args.optional("density"), args.optional("count")) {
        (Some(d), None) => {
            WorkloadSize::Density(d.parse().map_err(|_| format!("--density: bad '{d}'"))?)
        }
        (None, Some(c)) => {
            WorkloadSize::Count(c.parse().map_err(|_| format!("--count: bad '{c}'"))?)
        }
        _ => return Err("pass exactly one of --density or --count".to_string()),
    };
    let distribution = parse_rates(args.optional("rates").unwrap_or("caida"))?;
    let cfg = WorkloadConfig {
        distribution,
        size,
        link_capacity: args.num("capacity", tdmd_traffic::density::DEFAULT_LINK_CAPACITY)?,
        max_flows: args.num("max-flows", 100_000)?,
    };

    let dests = args.id_list("dests")?;
    let flows = if dests.is_empty() {
        let root: u32 = args.num("root", 0)?;
        let tree = RootedTree::from_digraph(&g, root)
            .map_err(|e| format!("--root mode needs a tree topology: {e}"))?;
        tree_workload(&g, &tree, &cfg, &mut rng)
    } else {
        general_workload(&g, &dests, &cfg, &mut rng)
    };
    let json = serde_json::to_string_pretty(&flows).map_err(|e| e.to_string())?;
    write_out(out, &json)?;
    let load: u64 = flows.iter().map(|f| f.rate * f.hops() as u64).sum();
    Ok(format!(
        "wrote {out}: {} flows, total load {load}\n",
        flows.len()
    ))
}

/// Parses `caida`, `constant:R`, or `uniform:LO:HI`.
fn parse_rates(spec: &str) -> Result<RateDistribution, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["caida"] => Ok(RateDistribution::caida_default()),
        ["constant", r] => Ok(RateDistribution::Constant(
            r.parse().map_err(|_| format!("bad rate '{r}'"))?,
        )),
        ["uniform", lo, hi] => Ok(RateDistribution::Uniform {
            lo: lo.parse().map_err(|_| format!("bad lo '{lo}'"))?,
            hi: hi.parse().map_err(|_| format!("bad hi '{hi}'"))?,
        }),
        _ => Err(format!(
            "bad --rates spec '{spec}' (caida|constant:R|uniform:LO:HI)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::topo;

    fn args(pairs: &[(&str, &str)]) -> Args {
        let flat: Vec<String> = pairs
            .iter()
            .flat_map(|(k, v)| [format!("--{k}"), v.to_string()])
            .collect();
        Args::parse(&flat).unwrap()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("tdmd-cli-test-{name}"))
            .display()
            .to_string()
    }

    #[test]
    fn rate_spec_parsing() {
        assert!(matches!(
            parse_rates("caida").unwrap(),
            RateDistribution::Caida(_)
        ));
        assert_eq!(
            parse_rates("constant:4").unwrap(),
            RateDistribution::Constant(4)
        );
        assert_eq!(
            parse_rates("uniform:2:9").unwrap(),
            RateDistribution::Uniform { lo: 2, hi: 9 }
        );
        assert!(parse_rates("zipf:1").is_err());
    }

    #[test]
    fn tree_workload_via_cli() {
        let topo_path = tmp("wl-topo.json");
        topo::generate(&args(&[
            ("kind", "tree"),
            ("size", "15"),
            ("out", &topo_path),
        ]))
        .unwrap();
        let wl_path = tmp("wl-flows.json");
        let msg = generate(&args(&[
            ("topo", &topo_path),
            ("count", "12"),
            ("out", &wl_path),
        ]))
        .unwrap();
        assert!(msg.contains("12 flows"));
        let flows = crate::commands::load_workload(&wl_path).unwrap();
        assert_eq!(flows.len(), 12);
        assert!(flows.iter().all(|f| f.dst() == 0));
    }

    #[test]
    fn general_workload_via_cli() {
        let topo_path = tmp("wl-topo2.json");
        topo::generate(&args(&[
            ("kind", "ark"),
            ("size", "20"),
            ("out", &topo_path),
        ]))
        .unwrap();
        let wl_path = tmp("wl-flows2.json");
        generate(&args(&[
            ("topo", &topo_path),
            ("density", "0.3"),
            ("dests", "0,1"),
            ("rates", "uniform:1:5"),
            ("out", &wl_path),
        ]))
        .unwrap();
        let flows = crate::commands::load_workload(&wl_path).unwrap();
        assert!(!flows.is_empty());
        assert!(flows
            .iter()
            .all(|f| f.dst() <= 1 && (1..=5).contains(&f.rate)));
    }

    #[test]
    fn density_and_count_are_mutually_exclusive() {
        let topo_path = tmp("wl-topo3.json");
        topo::generate(&args(&[
            ("kind", "tree"),
            ("size", "8"),
            ("out", &topo_path),
        ]))
        .unwrap();
        let e = generate(&args(&[
            ("topo", &topo_path),
            ("density", "0.3"),
            ("count", "5"),
            ("out", &tmp("x.json")),
        ]))
        .unwrap_err();
        assert!(e.contains("exactly one"));
    }
}
