//! CLI command implementations. Each returns the text to print so the
//! commands are unit-testable without process spawning.

pub mod bench;
pub mod chain;
pub mod evaluate;
pub mod place;
pub mod race;
pub mod serve;
pub mod stream;
pub mod topo;
pub mod workload;

use crate::args::Args;
use tdmd_graph::io::TopologyDoc;
use tdmd_graph::DiGraph;
use tdmd_online::ReconfigBudget;
use tdmd_traffic::Flow;

/// Parses the migration-budget flags shared by `stream run`,
/// `stream inject` and `serve run` into a [`ReconfigBudget`]:
///
/// * `--budget R` — migration tokens refilled per applied event;
///   absent means an unlimited budget (the pre-budget behaviour).
/// * `--burst B` — token-bucket capacity; defaults to
///   `R × max(sample_every, 1)`, i.e. the bucket can bank up to one
///   drift-sampling window of refill so a periodic replan stays
///   affordable.
/// * `--box-cost C` — tokens per middlebox moved (default 1).
/// * `--flow-cost C` — tokens per flow reassigned (default 0).
/// * `--hysteresis M` — swap hysteresis margin (default 0; applies
///   even without `--budget`).
pub fn budget_from(args: &Args) -> Result<ReconfigBudget, String> {
    let hysteresis: f64 = args.num("hysteresis", 0.0)?;
    let budget = match args.optional("budget") {
        None => ReconfigBudget::unlimited().with_hysteresis(hysteresis),
        Some(_) => {
            let refill: f64 = args.num_required("budget")?;
            let sample_every: u64 = args.num("sample-every", 256)?;
            let burst: f64 = args.num("burst", refill * sample_every.max(1) as f64)?;
            ReconfigBudget {
                box_move_cost: args.num("box-cost", 1.0)?,
                flow_reassign_cost: args.num("flow-cost", 0.0)?,
                refill_per_event: refill,
                burst,
                hysteresis,
            }
        }
    };
    budget.validate().map_err(|e| format!("--budget: {e}"))?;
    Ok(budget)
}

/// Loads a topology JSON file.
pub fn load_topology(path: &str) -> Result<DiGraph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    Ok(TopologyDoc::from_json(&text)
        .map_err(|e| format!("parse {path}: {e}"))?
        .to_graph())
}

/// Loads a workload JSON file (a `Vec<Flow>`).
pub fn load_workload(path: &str) -> Result<Vec<Flow>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))
}

/// Writes a string to a file, creating parent directories.
pub fn write_out(path: &str, contents: &str) -> Result<(), String> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("mkdir {parent:?}: {e}"))?;
        }
    }
    std::fs::write(path, contents).map_err(|e| format!("write {path}: {e}"))
}
