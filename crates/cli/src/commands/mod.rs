//! CLI command implementations. Each returns the text to print so the
//! commands are unit-testable without process spawning.

pub mod bench;
pub mod chain;
pub mod evaluate;
pub mod place;
pub mod serve;
pub mod stream;
pub mod topo;
pub mod workload;

use tdmd_graph::io::TopologyDoc;
use tdmd_graph::DiGraph;
use tdmd_traffic::Flow;

/// Loads a topology JSON file.
pub fn load_topology(path: &str) -> Result<DiGraph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    Ok(TopologyDoc::from_json(&text)
        .map_err(|e| format!("parse {path}: {e}"))?
        .to_graph())
}

/// Loads a workload JSON file (a `Vec<Flow>`).
pub fn load_workload(path: &str) -> Result<Vec<Flow>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))
}

/// Writes a string to a file, creating parent directories.
pub fn write_out(path: &str, contents: &str) -> Result<(), String> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("mkdir {parent:?}: {e}"))?;
        }
    }
    std::fs::write(path, contents).map_err(|e| format!("write {path}: {e}"))
}
