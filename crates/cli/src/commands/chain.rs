//! `tdmd chain place`.

use crate::args::Args;
use crate::commands::{load_topology, load_workload};
use tdmd_chain::{chain_at_destinations, chain_gtp, evaluate_chain, ChainSpec, MiddleboxType};

/// Parses a chain spec of the form `name:ratio,name:ratio,...`.
pub fn parse_chain(spec: &str) -> Result<ChainSpec, String> {
    let mut types = Vec::new();
    for part in spec.split(',') {
        let (name, ratio) = part
            .split_once(':')
            .ok_or_else(|| format!("bad chain element '{part}' (want name:ratio)"))?;
        let lambda: f64 = ratio
            .parse()
            .map_err(|_| format!("bad ratio '{ratio}' in '{part}'"))?;
        if !lambda.is_finite() || lambda < 0.0 {
            return Err(format!("ratio {lambda} out of range in '{part}'"));
        }
        types.push(MiddleboxType {
            name: name.trim().to_string(),
            lambda,
        });
    }
    if types.is_empty() {
        return Err("empty chain spec".to_string());
    }
    Ok(ChainSpec::new(types))
}

/// `tdmd chain place --topo t.json --workload wl.json
/// --types fw:1.0,opt:0.5,dec:2.0 --budget B`
pub fn place(args: &Args) -> Result<String, String> {
    let g = load_topology(args.required("topo")?)?;
    let flows = load_workload(args.required("workload")?)?;
    let chain = parse_chain(args.required("types")?)?;
    let budget: usize = args.num_required("budget")?;

    let egress = chain_at_destinations(&g, &flows, &chain);
    let egress_eval = evaluate_chain(&flows, &chain, &egress);
    let (dep, eval) = chain_gtp(&g, &flows, &chain, budget).map_err(|e| e.to_string())?;

    let mut out = format!(
        "chain:        {}\nflows:        {}\nbudget:       {budget} \
         (used {})\negress:       {:.2} with {} instances\nplaced:       {:.2} \
         ({:.1}% of egress)\n",
        chain
            .types()
            .iter()
            .map(|t| format!("{}:{}", t.name, t.lambda))
            .collect::<Vec<_>>()
            .join(" -> "),
        flows.len(),
        dep.total_instances(),
        egress_eval.bandwidth,
        egress.total_instances(),
        eval.bandwidth,
        100.0 * eval.bandwidth / egress_eval.bandwidth.max(1e-12),
    );
    for (t, spec) in chain.types().iter().enumerate() {
        out.push_str(&format!("  {:<12} at {:?}\n", spec.name, dep.instances(t)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::{topo, workload};

    fn args(pairs: &[(&str, &str)]) -> Args {
        let flat: Vec<String> = pairs
            .iter()
            .flat_map(|(k, v)| [format!("--{k}"), v.to_string()])
            .collect();
        Args::parse(&flat).unwrap()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("tdmd-cli-test-{name}"))
            .display()
            .to_string()
    }

    #[test]
    fn chain_spec_parsing() {
        let c = parse_chain("fw:1.0, opt:0.5,dec:2").unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.types()[1].name, "opt");
        assert_eq!(c.types()[2].lambda, 2.0);
        assert!(parse_chain("fw").is_err());
        assert!(parse_chain("fw:x").is_err());
        assert!(parse_chain("fw:-1").is_err());
    }

    #[test]
    fn chain_place_end_to_end() {
        let topo_path = tmp("chain-topo.json");
        topo::generate(&args(&[
            ("kind", "tree"),
            ("size", "12"),
            ("out", &topo_path),
        ]))
        .unwrap();
        let wl_path = tmp("chain-wl.json");
        workload::generate(&args(&[
            ("topo", &topo_path),
            ("count", "8"),
            ("out", &wl_path),
        ]))
        .unwrap();
        let report = place(&args(&[
            ("topo", &topo_path),
            ("workload", &wl_path),
            ("types", "fw:1.0,opt:0.5"),
            ("budget", "6"),
        ]))
        .unwrap();
        assert!(report.contains("fw:1 -> opt:0.5"));
        assert!(report.contains("egress:"));
        assert!(report.contains("placed:"));
    }

    #[test]
    fn impossible_budget_is_an_error() {
        let topo_path = tmp("chain-topo2.json");
        topo::generate(&args(&[
            ("kind", "tree"),
            ("size", "8"),
            ("out", &topo_path),
        ]))
        .unwrap();
        let wl_path = tmp("chain-wl2.json");
        workload::generate(&args(&[
            ("topo", &topo_path),
            ("count", "4"),
            ("out", &wl_path),
        ]))
        .unwrap();
        let err = place(&args(&[
            ("topo", &topo_path),
            ("workload", &wl_path),
            ("types", "a:0.5,b:0.5,c:0.5"),
            ("budget", "2"),
        ]))
        .unwrap_err();
        assert!(err.contains("feasible"));
    }
}
