//! `tdmd topo gen|stats|dot`.

use crate::args::Args;
use crate::commands::{load_topology, write_out};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tdmd_graph::dot::{to_dot, DotStyle};
use tdmd_graph::generators;
use tdmd_graph::io::TopologyDoc;
use tdmd_graph::stats::topology_stats;
use tdmd_graph::DiGraph;

/// Builds a topology of the requested kind.
pub fn build(kind: &str, size: usize, seed: u64) -> Result<DiGraph, String> {
    let mut rng = StdRng::seed_from_u64(seed);
    Ok(match kind {
        "tree" => generators::trees::random_tree(size.max(1), &mut rng),
        "binary" => {
            let levels = usize::BITS - size.max(1).leading_zeros();
            generators::trees::complete_binary_tree(levels.max(1))
        }
        "ark" => generators::ark::ark_like(size.max(5), 5.min(size.max(1)), &mut rng),
        "er" => generators::random::erdos_renyi_connected(size.max(1), 0.2, &mut rng),
        "ba" => generators::random::barabasi_albert(size.max(2), 2, &mut rng),
        "waxman" => generators::random::waxman(size.max(1), 0.6, 0.25, &mut rng).0,
        "fattree" => {
            // size = pod parameter k (rounded to even).
            let k = (size.max(2) / 2) * 2;
            generators::fattree::fat_tree(k.max(2)).graph
        }
        "bcube" => generators::bcube::bcube(size.clamp(2, 8), 1).graph,
        other => {
            return Err(format!(
                "unknown topology kind '{other}' \
                 (tree|binary|ark|er|ba|waxman|fattree|bcube)"
            ))
        }
    })
}

/// `tdmd topo gen --kind K --size N [--seed S] --out file.json`
pub fn generate(args: &Args) -> Result<String, String> {
    let kind = args.required("kind")?;
    let size: usize = args.num_required("size")?;
    let seed: u64 = args.num("seed", 0)?;
    let out = args.required("out")?;
    let g = build(kind, size, seed)?;
    let doc = TopologyDoc::from_graph(&g, format!("{kind}-{size}-seed{seed}"));
    write_out(out, &doc.to_json())?;
    Ok(format!(
        "wrote {out}: {} vertices, {} directed links ({kind})\n",
        g.node_count(),
        g.edge_count()
    ))
}

/// `tdmd topo stats --in file.json`
pub fn stats(args: &Args) -> Result<String, String> {
    let g = load_topology(args.required("in")?)?;
    let s = topology_stats(&g);
    Ok(format!(
        "vertices:        {}\ndirected links:  {}\ndegree (min/mean/max): {} / {:.2} / {}\n\
         diameter:        {}\n",
        s.nodes,
        s.directed_edges,
        s.min_degree,
        s.mean_degree,
        s.max_degree,
        s.diameter
            .map_or("disconnected".to_string(), |d| d.to_string()),
    ))
}

/// `tdmd topo dot --in file.json [--highlight 1,2] [--dests 0] --out file.dot`
pub fn dot(args: &Args) -> Result<String, String> {
    let g = load_topology(args.required("in")?)?;
    let style = DotStyle {
        highlighted: args.id_list("highlight")?,
        destinations: args.id_list("dests")?,
        undirected_pairs: true,
        show_weights: true,
    };
    let rendered = to_dot(&g, "tdmd", &style);
    match args.optional("out") {
        Some(out) => {
            write_out(out, &rendered)?;
            Ok(format!("wrote {out}\n"))
        }
        None => Ok(rendered),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(pairs: &[(&str, &str)]) -> Args {
        let flat: Vec<String> = pairs
            .iter()
            .flat_map(|(k, v)| [format!("--{k}"), v.to_string()])
            .collect();
        Args::parse(&flat).unwrap()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("tdmd-cli-test-{name}"))
            .display()
            .to_string()
    }

    #[test]
    fn build_covers_all_kinds() {
        for kind in [
            "tree", "binary", "ark", "er", "ba", "waxman", "fattree", "bcube",
        ] {
            let g = build(kind, 12, 1).unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert!(g.node_count() > 0, "{kind}");
        }
        assert!(build("nope", 10, 0).is_err());
    }

    #[test]
    fn gen_then_stats_round_trip() {
        let path = tmp("topo.json");
        let msg = generate(&args(&[("kind", "ark"), ("size", "20"), ("out", &path)])).unwrap();
        assert!(msg.contains("20 vertices"));
        let report = stats(&args(&[("in", &path)])).unwrap();
        assert!(report.contains("vertices:        20"));
        assert!(report.contains("diameter"));
    }

    #[test]
    fn dot_renders_highlights() {
        let path = tmp("topo2.json");
        generate(&args(&[("kind", "tree"), ("size", "6"), ("out", &path)])).unwrap();
        let dot = dot(&args(&[("in", &path), ("highlight", "0,2")])).unwrap();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("v0 [style=filled"));
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let err = stats(&args(&[("in", "/nonexistent/x.json")])).unwrap_err();
        assert!(err.contains("read"));
    }
}
