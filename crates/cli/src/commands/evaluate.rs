//! `tdmd evaluate`.

use crate::args::Args;
use crate::commands::{load_topology, load_workload};
use tdmd_core::{Deployment, Instance};
use tdmd_sim::metrics::LinkMetrics;
use tdmd_sim::replay;
use tdmd_sim::validate::validate_deployment;

/// `tdmd evaluate --topo t.json --workload wl.json --lambda L --k K
/// --plan plan.json [--capacity C] [--cost-model hops|weighted]`
///
/// Replays the workload through the plan, cross-checks the analytic
/// objective, and prints link metrics. With `--cost-model weighted`
/// the report also prices the plan under physical edge weights.
pub fn evaluate(args: &Args) -> Result<String, String> {
    let g = load_topology(args.required("topo")?)?;
    let flows = load_workload(args.required("workload")?)?;
    let lambda: f64 = args.num_required("lambda")?;
    let k: usize = args.num("k", usize::MAX)?;
    let plan_path = args.required("plan")?;
    let plan: Deployment = serde_json::from_str(
        &std::fs::read_to_string(plan_path).map_err(|e| format!("read {plan_path}: {e}"))?,
    )
    .map_err(|e| format!("parse {plan_path}: {e}"))?;
    let capacity: u64 = args.num("capacity", tdmd_traffic::density::DEFAULT_LINK_CAPACITY)?;

    let instance = Instance::new(g, flows, lambda, k).map_err(|e| e.to_string())?;
    validate_deployment(&instance, &plan).map_err(|e| format!("validation failed: {e}"))?;
    let loads = replay(&instance, &plan);
    let m = LinkMetrics::from_loads(&loads, capacity);
    let ((hu, hv), hl) = loads.max_link().unwrap_or(((0, 0), 0.0));
    let mut report = format!(
        "plan:            {:?}\nfeasible:        {}\ntotal bandwidth: {:.2}\n\
         loaded links:    {} (mean {:.2})\nhottest link:    {hu} -> {hv} at {hl:.2} \
         ({:.1}% of capacity)\n",
        plan.vertices(),
        m.feasible,
        m.total_bandwidth,
        m.loaded_links,
        m.mean_loaded_link,
        100.0 * m.max_utilization,
    );
    match args.optional("cost-model").unwrap_or("hops") {
        "hops" => {}
        "weighted" => {
            let wi = tdmd_core::weighted::WeightedIndex::new(&instance);
            report.push_str(&format!(
                "weighted bw:     {:.2} (unprocessed {:.2})\n",
                wi.bandwidth_of(&instance, &plan),
                wi.unprocessed(&instance),
            ));
        }
        other => return Err(format!("unknown cost model '{other}' (hops|weighted)")),
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::{place, topo, workload};

    fn args(pairs: &[(&str, &str)]) -> Args {
        let flat: Vec<String> = pairs
            .iter()
            .flat_map(|(k, v)| [format!("--{k}"), v.to_string()])
            .collect();
        Args::parse(&flat).unwrap()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("tdmd-cli-test-{name}"))
            .display()
            .to_string()
    }

    #[test]
    fn evaluate_a_placed_plan() {
        let topo_path = tmp("eval-topo.json");
        topo::generate(&args(&[
            ("kind", "tree"),
            ("size", "12"),
            ("out", &topo_path),
        ]))
        .unwrap();
        let wl_path = tmp("eval-wl.json");
        workload::generate(&args(&[
            ("topo", &topo_path),
            ("count", "8"),
            ("out", &wl_path),
        ]))
        .unwrap();
        let plan_path = tmp("eval-plan.json");
        place::place(&args(&[
            ("topo", &topo_path),
            ("workload", &wl_path),
            ("lambda", "0.5"),
            ("k", "3"),
            ("algorithm", "gtp"),
            ("out", &plan_path),
        ]))
        .unwrap();
        let report = evaluate(&args(&[
            ("topo", &topo_path),
            ("workload", &wl_path),
            ("lambda", "0.5"),
            ("k", "3"),
            ("plan", &plan_path),
        ]))
        .unwrap();
        assert!(report.contains("feasible:        true"));
        assert!(report.contains("total bandwidth:"));
        let weighted = evaluate(&args(&[
            ("topo", &topo_path),
            ("workload", &wl_path),
            ("lambda", "0.5"),
            ("k", "3"),
            ("plan", &plan_path),
            ("cost-model", "weighted"),
        ]))
        .unwrap();
        assert!(weighted.contains("weighted bw:"));
    }

    #[test]
    fn tampered_plans_fail_validation() {
        let topo_path = tmp("eval-topo2.json");
        topo::generate(&args(&[
            ("kind", "tree"),
            ("size", "10"),
            ("out", &topo_path),
        ]))
        .unwrap();
        let wl_path = tmp("eval-wl2.json");
        workload::generate(&args(&[
            ("topo", &topo_path),
            ("count", "6"),
            ("out", &wl_path),
        ]))
        .unwrap();
        // Empty plan: every flow unserved.
        let plan_path = tmp("eval-plan2.json");
        let empty = tdmd_core::Deployment::empty(10);
        std::fs::write(&plan_path, serde_json::to_string(&empty).unwrap()).unwrap();
        let err = evaluate(&args(&[
            ("topo", &topo_path),
            ("workload", &wl_path),
            ("lambda", "0.5"),
            ("plan", &plan_path),
        ]))
        .unwrap_err();
        assert!(err.contains("validation failed"));
    }
}
