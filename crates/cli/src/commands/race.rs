//! `tdmd race` — the schedule-perturbation determinism race
//! (see [`tdmd_sim::race`]).
//!
//! Reruns the sharded GTP kernel and the online batch path under
//! adversarial shard widths, racing OS threads and randomized batch
//! partitions, and hard-fails (non-zero exit) on any bitwise
//! divergence from the sequential oracles. CI invokes it through
//! `cargo xtask race`.
//!
//! ```text
//! tdmd race [--seeds 1,2,3,4] [--nodes 12] [--flows 32]
//!           [--events 48] [--partitions 6] [--threads 4]
//! ```

use crate::args::Args;
use tdmd_sim::race::{run_race, RaceConfig};

/// Runs the race sweep; `Err` (exit 1) when any perturbed run
/// diverges bitwise from its sequential oracle.
pub fn run(args: &Args) -> Result<String, String> {
    let defaults = RaceConfig::default();
    let seeds = match args.optional("seeds") {
        None => defaults.seeds,
        Some(raw) => raw
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<u64>()
                    .map_err(|e| format!("--seeds: bad seed '{s}': {e}"))
            })
            .collect::<Result<Vec<u64>, String>>()?,
    };
    if seeds.is_empty() {
        return Err("--seeds: need at least one seed".to_string());
    }
    let cfg = RaceConfig {
        seeds,
        nodes: args.num("nodes", defaults.nodes)?,
        flows: args.num("flows", defaults.flows)?,
        events: args.num("events", defaults.events)?,
        partitions: args.num("partitions", defaults.partitions)?,
        threads: args.num("threads", defaults.threads)?,
    };
    if cfg.nodes < 4 {
        return Err("--nodes: need at least 4 vertices".to_string());
    }
    let report = run_race(&cfg);
    let text = report.render();
    if report.passed() {
        Ok(text)
    } else {
        Err(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(pairs: &[(&str, &str)]) -> Args {
        let argv: Vec<String> = pairs
            .iter()
            .flat_map(|(k, v)| [format!("--{k}"), v.to_string()])
            .collect();
        Args::parse(&argv).unwrap()
    }

    #[test]
    fn small_race_passes_and_reports_trials() {
        let out = run(&args(&[
            ("seeds", "5"),
            ("nodes", "6"),
            ("flows", "8"),
            ("events", "16"),
            ("partitions", "2"),
            ("threads", "2"),
        ]))
        .unwrap();
        assert!(out.contains("race: PASS"), "{out}");
        assert!(out.contains("shard trials"), "{out}");
    }

    #[test]
    fn bad_flags_are_rejected() {
        assert!(run(&args(&[("seeds", "x")])).is_err());
        assert!(run(&args(&[("nodes", "2"), ("seeds", "1")])).is_err());
    }
}
