//! `tdmd serve` — the long-running placement service front end.
//!
//! `serve gen` lowers a multi-tenant gravity workload to an NDJSON
//! event file (the [`tdmd_serve::WireEvent`] wire format); `serve run`
//! drives a [`tdmd_serve::ServeSession`] from such a file (or stdin)
//! and writes placement decisions, telemetry and snapshot notices as
//! NDJSON (to a file or stdout). A session can be started from a
//! previous run's state snapshot with `--restore-from`; replaying the
//! remaining events then reproduces the uninterrupted run bitwise
//! (see `tdmd-serve`'s property tests).

use crate::args::Args;
use crate::commands::load_topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdmd_graph::NodeId;
use tdmd_online::{events_from_spans, Event, FlowSpan, HopPricer, RepairPolicy};
use tdmd_serve::{ServeConfig, ServeSession, ServeSnapshot, WireEvent};
use tdmd_traffic::{gravity_workload, GravityConfig, TenantProfile};

/// Builds the tenant profile set for `serve gen`: tenant 0 is a
/// premium class (larger share, bursty rate, higher weight), the last
/// is best-effort, classes in between interpolate linearly.
fn tenant_profiles(count: usize) -> Vec<TenantProfile> {
    assert!(count > 0, "need at least one tenant");
    if count == 1 {
        return TenantProfile::uniform(1);
    }
    let share = 1.0 / count as f64;
    (0..count)
        .map(|t| {
            // 1.0 for tenant 0 down to 0.0 for the last.
            let rank = 1.0 - t as f64 / (count - 1) as f64;
            TenantProfile {
                share,
                rate_scale: 0.5 + rank,   // 1.5 premium … 0.5 best-effort
                weight: 0.5 + 1.5 * rank, // 2.0 premium … 0.5 best-effort
            }
        })
        .collect()
}

/// Lowers timed span churn to NDJSON wire-event lines, tagging each
/// arrival with its span's tenant (`events_from_spans` keys flows by
/// span index, so the tenant lookup is direct).
pub fn wire_lines(spans: &[FlowSpan]) -> Result<Vec<String>, String> {
    events_from_spans(spans)
        .into_iter()
        .map(|te| {
            let ev = match te.event {
                Event::FlowArrived { key, rate, path } => WireEvent::Arrive {
                    key,
                    rate,
                    path,
                    tenant: spans[key as usize].flow.tenant,
                },
                Event::FlowDeparted { key } => WireEvent::Depart { key },
                Event::MiddleboxFailed { vertex } => WireEvent::Fail { vertex },
                Event::VertexDown { vertex } => WireEvent::Down { vertex },
                Event::MiddleboxRecovered { vertex } => WireEvent::Recover { vertex },
            };
            serde_json::to_string(&ev).map_err(|e| e.to_string())
        })
        .collect()
}

/// Generates the seeded multi-tenant event stream `serve gen` and
/// `tdmd bench` share: a gravity workload over all vertices with
/// `tenants` traffic classes, each flow living a random span inside
/// `[0, duration)`.
pub fn generate_events(
    g: &tdmd_graph::DiGraph,
    tenants: usize,
    total_rate: u64,
    max_flows: usize,
    duration: u64,
    mean_hold: u64,
    seed: u64,
) -> Result<Vec<String>, String> {
    if duration == 0 {
        return Err("--duration must be positive".to_string());
    }
    let cfg = GravityConfig {
        total_rate,
        tenants: tenant_profiles(tenants),
        population_range: (1 << 15, 1 << 18),
        max_flows,
    };
    let all: Vec<NodeId> = (0..g.node_count() as NodeId).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let flows = gravity_workload(g, &all, &all, &cfg, &mut rng);
    if flows.is_empty() {
        return Err("gravity workload is empty (raise --total-rate)".to_string());
    }
    let mean_hold = mean_hold.max(1);
    let spans: Vec<FlowSpan> = flows
        .into_iter()
        .map(|flow| {
            let start_us = rng.gen_range(0..duration);
            let u = (rng.gen_range(1..=1000) as f64) / 1000.0;
            let hold = ((-u.ln()) * mean_hold as f64).ceil() as u64;
            FlowSpan {
                start_us,
                end_us: start_us + hold.max(1),
                flow,
            }
        })
        .collect();
    wire_lines(&spans)
}

/// `tdmd serve gen --topo t.json --out events.ndjson [--tenants N]
/// [--total-rate R] [--max-flows M] [--duration D] [--mean-hold H]
/// [--seed S]`
///
/// Writes one NDJSON [`WireEvent`] per line: every flow of a
/// multi-tenant gravity workload arrives at a uniform-random time in
/// `[0, D)` and departs after a geometric-flavoured hold around `H`.
pub fn generate(args: &Args) -> Result<String, String> {
    let g = load_topology(args.required("topo")?)?;
    let out_path = args.required("out")?;
    let tenants: usize = args.num("tenants", 3)?;
    if tenants == 0 {
        return Err("--tenants must be positive".to_string());
    }
    let total_rate: u64 = args.num("total-rate", 100_000)?;
    let max_flows: usize = args.num("max-flows", 100_000)?;
    let duration: u64 = args.num("duration", 1_000_000)?;
    let mean_hold: u64 = args.num("mean-hold", duration / 4)?;
    let seed: u64 = args.num("seed", 0)?;

    let lines = generate_events(
        &g, tenants, total_rate, max_flows, duration, mean_hold, seed,
    )?;
    let n = lines.len();
    let mut text = lines.join("\n");
    text.push('\n');
    crate::commands::write_out(out_path, &text)?;
    Ok(format!(
        "{n} events ({} flows, {tenants} tenants) over [0, {duration}) µs written to {out_path}\n",
        n / 2,
    ))
}

/// Parses the repair-policy flags shared with `stream run`, including
/// the migration-budget flags (`--budget`, `--burst`, `--box-cost`,
/// `--flow-cost`, `--hysteresis` — see
/// [`crate::commands::budget_from`]).
fn policy_from(args: &Args) -> Result<RepairPolicy, String> {
    match args.optional("policy").unwrap_or("incremental") {
        "incremental" => Ok(RepairPolicy {
            move_budget: args.num("move-budget", 4)?,
            drift_eps: args.num("eps", 0.05)?,
            sample_every: args.num("sample-every", 256)?,
            budget: crate::commands::budget_from(args)?,
            ..RepairPolicy::default()
        }),
        "replanned" => Ok(RepairPolicy::forced_replan()),
        other => Err(format!("unknown policy '{other}' (incremental|replanned)")),
    }
}

/// Loads a `ServeSnapshot` JSON file.
fn load_snapshot(path: &str) -> Result<ServeSnapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))
}

/// `tdmd serve run --topo t.json --lambda L --k K [--in events.ndjson]
/// [--out records.ndjson] [--telemetry-every N] [--snapshot-every N]
/// [--snapshot-path state.json] [--restore-from state.json]
/// [--policy incremental|replanned] [--move-budget N] [--eps E]
/// [--sample-every N] [--budget R] [--burst B] [--box-cost C]
/// [--flow-cost C] [--hysteresis M]`
///
/// Runs the serve loop over the event file (stdin when `--in` is
/// omitted), writing NDJSON records to `--out` (stdout when omitted).
/// `--restore-from` starts the session from a previous run's snapshot
/// instead of an empty engine; `--snapshot-path` is where periodic
/// (`--snapshot-every`) and requested (`"Snapshot"` line) snapshots
/// are written, latest wins.
pub fn run(args: &Args) -> Result<String, String> {
    let graph = load_topology(args.required("topo")?)?;
    let lambda: f64 = args.num_required("lambda")?;
    let k: usize = args.num_required("k")?;
    let policy = policy_from(args)?;
    let config = ServeConfig {
        telemetry_every: args.num("telemetry-every", 1000)?,
        snapshot_every: args.num("snapshot-every", 0)?,
        snapshot_path: args.optional("snapshot-path").map(Into::into),
    };

    let mut session = match args.optional("restore-from") {
        Some(path) => {
            let snap = load_snapshot(path)?;
            ServeSession::restore(graph, HopPricer::default(), policy, config, &snap)
                .map_err(|e| format!("restore {path}: {e}"))?
        }
        None => {
            let engine =
                tdmd_online::OnlineEngine::new(graph, lambda, k, HopPricer::default(), policy)
                    .map_err(|e| e.to_string())?;
            ServeSession::new(engine, config)
        }
    };

    let io_err = |e: std::io::Error| format!("serve loop: {e}");
    match (args.optional("in"), args.optional("out")) {
        (Some(inp), out) => {
            let file = std::fs::File::open(inp).map_err(|e| format!("open {inp}: {e}"))?;
            let reader = std::io::BufReader::new(file);
            match out {
                Some(outp) => {
                    let mut sink = Vec::new();
                    session.run(reader, &mut sink).map_err(io_err)?;
                    let text = String::from_utf8(sink)
                        .map_err(|e| format!("serve output is not UTF-8: {e}"))?;
                    crate::commands::write_out(outp, &text)?;
                }
                None => session
                    .run(reader, std::io::stdout().lock())
                    .map_err(io_err)?,
            }
        }
        (None, out) => {
            let stdin = std::io::stdin();
            match out {
                Some(outp) => {
                    let mut sink = Vec::new();
                    session.run(stdin.lock(), &mut sink).map_err(io_err)?;
                    let text = String::from_utf8(sink)
                        .map_err(|e| format!("serve output is not UTF-8: {e}"))?;
                    crate::commands::write_out(outp, &text)?;
                }
                None => session
                    .run(stdin.lock(), std::io::stdout().lock())
                    .map_err(io_err)?,
            }
        }
    }
    // All reporting went through the NDJSON stream already.
    Ok(String::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::topo;
    use tdmd_serve::WireRecord;

    fn args(pairs: &[(&str, &str)]) -> Args {
        let flat: Vec<String> = pairs
            .iter()
            .flat_map(|(k, v)| [format!("--{k}"), v.to_string()])
            .collect();
        Args::parse(&flat).unwrap()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("tdmd-cli-test-{name}"))
            .display()
            .to_string()
    }

    fn fixture() -> String {
        let topo_path = tmp("serve-topo.json");
        topo::generate(&args(&[
            ("kind", "tree"),
            ("size", "14"),
            ("out", &topo_path),
        ]))
        .unwrap();
        topo_path
    }

    #[test]
    fn gen_writes_parseable_tenant_tagged_events() {
        let topo = fixture();
        let out = tmp("serve-events.ndjson");
        let report = generate(&args(&[
            ("topo", &topo),
            ("out", &out),
            ("tenants", "3"),
            ("total-rate", "5000"),
            ("duration", "1000"),
            ("seed", "7"),
        ]))
        .unwrap();
        assert!(report.contains("3 tenants"), "{report}");
        let text = std::fs::read_to_string(&out).unwrap();
        let mut tenants_seen = std::collections::BTreeSet::new();
        for line in text.lines() {
            let ev: WireEvent = serde_json::from_str(line).unwrap();
            if let WireEvent::Arrive { tenant, .. } = ev {
                tenants_seen.insert(tenant);
            }
        }
        assert_eq!(tenants_seen.into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn run_snapshot_restore_replay_matches_the_uninterrupted_run() {
        let topo = fixture();
        let events_path = tmp("serve-replay-events.ndjson");
        generate(&args(&[
            ("topo", &topo),
            ("out", &events_path),
            ("tenants", "2"),
            ("total-rate", "4000"),
            ("duration", "2000"),
            ("seed", "11"),
        ]))
        .unwrap();
        let all = std::fs::read_to_string(&events_path).unwrap();
        let lines: Vec<&str> = all.lines().collect();
        assert!(lines.len() >= 10, "need a non-trivial stream");
        let cut = lines.len() / 2;

        // Uninterrupted run, snapshotting at the cut.
        let full_out = tmp("serve-replay-full.ndjson");
        let snap_path = tmp("serve-replay-snap.json");
        let mut with_snapshot = lines[..cut].join("\n");
        with_snapshot.push_str("\n\"Snapshot\"\n");
        with_snapshot.push_str(&lines[cut..].join("\n"));
        with_snapshot.push('\n');
        let full_in = tmp("serve-replay-full-in.ndjson");
        std::fs::write(&full_in, &with_snapshot).unwrap();
        run(&args(&[
            ("topo", &topo),
            ("lambda", "0.5"),
            ("k", "3"),
            ("in", &full_in),
            ("out", &full_out),
            ("snapshot-path", &snap_path),
        ]))
        .unwrap();

        // Restored run over the tail only.
        let tail_in = tmp("serve-replay-tail-in.ndjson");
        let mut tail = lines[cut..].join("\n");
        tail.push('\n');
        std::fs::write(&tail_in, &tail).unwrap();
        let tail_out = tmp("serve-replay-tail.ndjson");
        run(&args(&[
            ("topo", &topo),
            ("lambda", "0.5"),
            ("k", "3"),
            ("in", &tail_in),
            ("out", &tail_out),
            ("restore-from", &snap_path),
        ]))
        .unwrap();

        let bye = |path: &str| -> tdmd_serve::Telemetry {
            let text = std::fs::read_to_string(path).unwrap();
            let last = text.lines().last().unwrap();
            match serde_json::from_str(last).unwrap() {
                WireRecord::Bye { telemetry } => telemetry,
                other => panic!("expected Bye, got {other:?}"),
            }
        };
        let a = bye(&full_out);
        let b = bye(&tail_out);
        assert_eq!(a.events, b.events);
        assert_eq!(a.deployment, b.deployment);
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
        assert_eq!(a.active_flows, b.active_flows);
        assert_eq!(b.snapshots_restored, 1);
    }

    #[test]
    fn run_rejects_unknown_policy() {
        let topo = fixture();
        let err = run(&args(&[
            ("topo", &topo),
            ("lambda", "0.5"),
            ("k", "3"),
            ("in", "/nonexistent"),
            ("policy", "psychic"),
        ]))
        .unwrap_err();
        assert!(err.contains("unknown policy"));
    }
}
