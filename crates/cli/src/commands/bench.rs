//! `tdmd bench` — the seeded benchmark trajectory.
//!
//! Runs the paper-default scenarios through the static solvers and
//! the incremental engine, collecting wall-clock time, the objective,
//! and the `tdmd-obs` telemetry (engine counters, event latency
//! percentiles), and writes two schema-stable JSON artifacts:
//!
//! * `BENCH_solve.json` ([`SOLVE_SCHEMA`]) — one entry per
//!   scenario × GTP variant with the engine counter deltas.
//! * `BENCH_stream.json` ([`STREAM_SCHEMA`]) — one entry per
//!   scenario × repair policy with per-event latency percentiles.
//! * `BENCH_joint.json` ([`JOINT_SCHEMA`]) — the route-diversity
//!   sweep: one entry per candidate-set size, comparing the joint
//!   routing + placement solver against its fixed-path baseline and
//!   LP lower bound.
//! * `BENCH_scale.json` ([`SCALE_SCHEMA`], via `tdmd bench --scale
//!   true`) — the million-flow scale tier: one sharded-parallel solve
//!   plus a batched churn replay, pinning `events_per_sec` and
//!   `gain_evals_per_sec`.
//! * `BENCH_reconfig.json` ([`RECONFIG_SCHEMA`]) — the
//!   migration-budget sweep: the same churn stream replayed at
//!   decreasing [`ReconfigBudget`] levels, pinning the moves/event
//!   curve and the objective gap vs. the unconstrained baseline.
//!
//! Every measured latency/wall-clock/throughput field is rounded to
//! three fractional digits at the serialization boundary
//! ([`tdmd_obs::round_metric`]) so committed artifacts never churn on
//! float noise (`8.549999999999999`); objective fields stay exact.
//!
//! The JSON shape is a consumer contract (CI parses it, trend tooling
//! diffs it); grow it by *adding* fields, never renaming.

use crate::args::Args;
use crate::commands::write_out;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tdmd_core::algorithms::gtp::{gtp_budgeted, gtp_lazy, gtp_parallel, gtp_sharded};
use tdmd_core::algorithms::joint::{joint_solve_with, JointConfig};
use tdmd_core::objective::bandwidth_of;
use tdmd_core::{Deployment, Instance, TdmdError};
use tdmd_experiments::scenarios::{
    general_instance, general_pathset_instance, tree_instance, Scenario,
};
use tdmd_obs::{normalize_zero, percentile, round_metric, StatsRecorder, Stopwatch};
use tdmd_online::{
    events_from_spans, obs_keys, Event, FlowSpan, HopPricer, OnlineEngine, ReconfigBudget,
    RepairPolicy,
};
use tdmd_traffic::GatewayWorkload;

/// Schema tag of `BENCH_solve.json`.
pub const SOLVE_SCHEMA: &str = "tdmd-bench-solve/v1";
/// Schema tag of `BENCH_stream.json`.
pub const STREAM_SCHEMA: &str = "tdmd-bench-stream/v1";
/// Schema tag of `BENCH_joint.json`.
pub const JOINT_SCHEMA: &str = "tdmd-bench-joint/v1";
/// Schema tag of `BENCH_serve.json`.
pub const SERVE_SCHEMA: &str = "tdmd-bench-serve/v1";
/// Schema tag of `BENCH_scale.json`.
pub const SCALE_SCHEMA: &str = "tdmd-bench-scale/v1";
/// Schema tag of `BENCH_reconfig.json`.
pub const RECONFIG_SCHEMA: &str = "tdmd-bench-reconfig/v1";

/// Engine-counter deltas attributed to one solve (see
/// [`tdmd_core::obs::EngineCounters`] for the meanings).
#[derive(Debug, Serialize, Deserialize)]
pub struct SolveCounters {
    /// Marginal-gain evaluations.
    pub gain_evals: u64,
    /// CELF heap pops (lazy variant only).
    pub lazy_pops: u64,
    /// Stale pops that forced a refresh.
    pub lazy_stale_refreshes: u64,
    /// Feasibility-guard evaluations.
    pub guard_checks: u64,
    /// Rounds where the guard restricted the candidate set.
    pub guard_activations: u64,
}

/// One scenario × algorithm measurement.
#[derive(Debug, Serialize, Deserialize)]
pub struct SolveEntry {
    /// Scenario name (`tree-default` / `general-default`).
    pub scenario: String,
    /// Solver variant (`gtp_eager` / `gtp_lazy` / `gtp_parallel`).
    pub algorithm: String,
    /// Topology size.
    pub nodes: usize,
    /// Workload size.
    pub flows: usize,
    /// Middlebox budget.
    pub k: usize,
    /// Traffic-changing ratio.
    pub lambda: f64,
    /// Wall-clock solve time in µs.
    pub wall_us: f64,
    /// Total bandwidth of the returned plan.
    pub objective: f64,
    /// Engine hot-path counters spent by this solve.
    pub counters: SolveCounters,
}

/// `BENCH_solve.json` document.
#[derive(Debug, Serialize, Deserialize)]
pub struct SolveBench {
    /// Always [`SOLVE_SCHEMA`].
    pub schema: String,
    /// Base RNG seed the scenarios were drawn from.
    pub seed: u64,
    /// Measurements.
    pub entries: Vec<SolveEntry>,
}

/// Per-event latency percentiles in µs (nearest-rank).
#[derive(Debug, Serialize, Deserialize)]
pub struct LatencyUs {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Slowest event.
    pub max: f64,
}

/// Repair-activity counters for one stream replay.
#[derive(Debug, Serialize, Deserialize)]
pub struct StreamCounters {
    /// Arrival events applied.
    pub arrivals: u64,
    /// Departure events applied.
    pub departures: u64,
    /// Greedy adds performed by local repair.
    pub adds: u64,
    /// Free drops performed by local repair.
    pub drops: u64,
    /// Bounded swaps performed by local repair.
    pub swaps: u64,
    /// Oracle deployments adopted.
    pub replans: u64,
}

/// One scenario × policy stream measurement.
#[derive(Debug, Serialize, Deserialize)]
pub struct StreamEntry {
    /// Scenario name.
    pub scenario: String,
    /// Repair policy (`incremental` / `replanned`).
    pub policy: String,
    /// Events replayed.
    pub events: usize,
    /// Wall-clock replay time in µs.
    pub wall_us: f64,
    /// Final exact objective after the replay.
    pub objective: f64,
    /// Per-event apply latency percentiles.
    pub latency_us: LatencyUs,
    /// Event and repair counters.
    pub counters: StreamCounters,
}

/// `BENCH_stream.json` document.
#[derive(Debug, Serialize, Deserialize)]
pub struct StreamBench {
    /// Always [`STREAM_SCHEMA`].
    pub schema: String,
    /// Base RNG seed.
    pub seed: u64,
    /// Measurements.
    pub entries: Vec<StreamEntry>,
}

/// One route-diversity measurement of the joint solver.
#[derive(Debug, Serialize, Deserialize)]
pub struct JointEntry {
    /// Scenario name.
    pub scenario: String,
    /// Candidate paths per flow fed to the solver.
    pub k_paths: usize,
    /// Topology size.
    pub nodes: usize,
    /// Workload size.
    pub flows: usize,
    /// Middlebox budget.
    pub k: usize,
    /// Traffic-changing ratio.
    pub lambda: f64,
    /// Wall-clock joint solve time in µs (includes the LP bound).
    pub wall_us: f64,
    /// Joint objective (routing + placement).
    pub objective: f64,
    /// Fixed-path GTP baseline on the same workload's primaries.
    pub fixed_objective: f64,
    /// LP-relaxation lower bound on the joint optimum.
    pub lp_bound: f64,
    /// GTP placement rounds the alternation spent.
    pub rounds: usize,
    /// Active-path switches applied.
    pub path_switches: u64,
    /// Wall-clock µs of the LP bound computation alone.
    pub lp_bound_us: f64,
}

/// `BENCH_joint.json` document.
#[derive(Debug, Serialize, Deserialize)]
pub struct JointBench {
    /// Always [`JOINT_SCHEMA`].
    pub schema: String,
    /// Base RNG seed.
    pub seed: u64,
    /// Measurements, one per swept candidate-set size.
    pub entries: Vec<JointEntry>,
}

/// Per-tenant figures of one serve-loop replay.
#[derive(Debug, Serialize, Deserialize)]
pub struct ServeTenantEntry {
    /// Tenant / traffic class id.
    pub tenant: u16,
    /// Events attributed to the tenant over the replay.
    pub events: u64,
    /// Served bandwidth at shutdown (rate units).
    pub served_bw: u64,
    /// Degraded bandwidth at shutdown (rate units).
    pub degraded_bw: u64,
    /// p50 of the tenant-attributed apply latency in µs.
    pub apply_p50_us: f64,
    /// p99 of the tenant-attributed apply latency in µs.
    pub apply_p99_us: f64,
}

/// `BENCH_serve.json` document: one long multi-tenant NDJSON replay
/// through the serve loop, with a mid-stream snapshot → restore →
/// tail-replay bitwise check.
#[derive(Debug, Serialize, Deserialize)]
pub struct ServeBench {
    /// Always [`SERVE_SCHEMA`].
    pub schema: String,
    /// Base RNG seed.
    pub seed: u64,
    /// Events piped through the loop.
    pub events: usize,
    /// Wall-clock replay time in µs (full uninterrupted run).
    pub wall_us: f64,
    /// Sustained event throughput of the uninterrupted run.
    pub events_per_sec: f64,
    /// Event index the mid-stream snapshot was taken at.
    pub snapshot_at: u64,
    /// Whether the restored tail replay finished bitwise-identical to
    /// the uninterrupted run (deployment and exact objective). The
    /// bench fails loudly when it does not, so a committed artifact
    /// always says `true`.
    pub restore_bitwise: bool,
    /// Whole-loop event latency p50 in µs.
    pub event_p50_us: f64,
    /// Whole-loop event latency p99 in µs.
    pub event_p99_us: f64,
    /// Per-tenant fairness figures, ascending by tenant id.
    pub tenants: Vec<ServeTenantEntry>,
}

/// One budget level of the reconfiguration sweep.
#[derive(Debug, Serialize, Deserialize)]
pub struct ReconfigEntry {
    /// Sweep-point name (`unlimited` is the baseline every gap is
    /// measured against).
    pub name: String,
    /// Token refill per applied event (`0` for the unlimited
    /// baseline — `∞` is not representable in JSON).
    pub refill_per_event: f64,
    /// Token-bucket capacity (`0` reported for the unlimited
    /// baseline).
    pub burst: f64,
    /// Tokens charged per middlebox moved.
    pub box_move_cost: f64,
    /// Tokens charged per flow reassigned.
    pub flow_reassign_cost: f64,
    /// Swap hysteresis margin.
    pub hysteresis: f64,
    /// Events replayed.
    pub events: usize,
    /// Middleboxes moved over the replay.
    pub boxes_moved: u64,
    /// Flow reassignments caused by those moves.
    pub flows_reassigned: u64,
    /// `boxes_moved / events` — the migration-rate curve the sweep
    /// exists to plot.
    pub moves_per_event: f64,
    /// Reconfigurations the budget deferred.
    pub budget_deferrals: u64,
    /// Migration cost charged against the budget (token units).
    pub budget_spent: f64,
    /// Mean of the maintained objective over all events (the streams
    /// drain, so the final objective is uninformative; the mean tracks
    /// how much bandwidth saving the budgeted engine held *during*
    /// churn).
    pub mean_objective: f64,
    /// `mean_objective / mean_objective(unlimited) − 1` — the price of
    /// the budget as extra bandwidth consumed (positive = worse than
    /// unconstrained). `0` for the baseline; may go slightly negative
    /// when hysteresis happens to avoid an unprofitable greedy move.
    pub objective_gap_vs_unconstrained: f64,
}

/// `BENCH_reconfig.json` document: the migration-budget sweep on the
/// general-default churn scenario under drift-sampled repair.
#[derive(Debug, Serialize, Deserialize)]
pub struct ReconfigBench {
    /// Always [`RECONFIG_SCHEMA`].
    pub schema: String,
    /// Base RNG seed.
    pub seed: u64,
    /// Measurements, unlimited baseline first.
    pub entries: Vec<ReconfigEntry>,
}

/// Workload knobs of the scale tier.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScaleParams {
    /// Topology size (connected Erdős–Rényi, average degree ≈ 8).
    pub nodes: usize,
    /// Flows loaded before the churn phase.
    pub flows: usize,
    /// Mixed arrival/departure events replayed after the load.
    pub churn_events: usize,
    /// Events per `apply_batch` call.
    pub batch: usize,
    /// Middlebox budget.
    pub k: usize,
    /// Gateway (destination) vertices.
    pub gateways: usize,
    /// Traffic-changing ratio λ.
    pub lambda: f64,
    /// Uniform per-flow rate ceiling (integral rate units).
    pub max_rate: u64,
}

impl ScaleParams {
    /// The committed-artifact tier: a million flows over a
    /// thousand-vertex topology.
    pub fn full_tier() -> Self {
        Self {
            nodes: 1024,
            flows: 1_000_000,
            churn_events: 200_000,
            batch: 1024,
            k: 32,
            gateways: 8,
            lambda: 0.5,
            max_rate: 10,
        }
    }

    /// CI-sized smoke tier: same shape, ~50× smaller, minutes → a few
    /// seconds even in debug builds.
    pub fn smoke() -> Self {
        Self {
            nodes: 128,
            flows: 20_000,
            churn_events: 4_000,
            batch: 256,
            k: 8,
            gateways: 4,
            lambda: 0.5,
            max_rate: 10,
        }
    }

    /// [`ScaleParams::smoke`] when the `TDMD_BENCH_SMOKE` environment
    /// variable is set (the CI smoke job), [`ScaleParams::full_tier`]
    /// otherwise.
    pub fn from_env() -> Self {
        if std::env::var_os("TDMD_BENCH_SMOKE").is_some() {
            Self::smoke()
        } else {
            Self::full_tier()
        }
    }
}

/// `BENCH_scale.json` document: one sharded-parallel static solve over
/// the full workload, then a batched online replay (bulk load + mixed
/// churn) through [`OnlineEngine::apply_batch`] under a local-only
/// repair policy.
#[derive(Debug, Serialize, Deserialize)]
pub struct ScaleBench {
    /// Always [`SCALE_SCHEMA`].
    pub schema: String,
    /// Base RNG seed.
    pub seed: u64,
    /// Workload knobs the run used (the smoke tier writes smaller
    /// numbers here, which is how CI tells the artifacts apart).
    pub params: ScaleParams,
    /// Wall-clock µs of the sharded-parallel GTP solve.
    pub solve_wall_us: f64,
    /// Marginal-gain evaluations the solve spent.
    pub solve_gain_evals: u64,
    /// Gain evaluations per second sustained by the solve.
    pub gain_evals_per_sec: f64,
    /// Exact objective of the static solve.
    pub solve_objective: f64,
    /// Wall-clock µs of the bulk load (all flows arriving through
    /// `apply_batch`).
    pub load_wall_us: f64,
    /// Arrival events per second sustained during the bulk load.
    pub load_events_per_sec: f64,
    /// Wall-clock µs of the churn replay.
    pub churn_wall_us: f64,
    /// Churn events per second sustained through `apply_batch`.
    pub events_per_sec: f64,
    /// p50 of per-batch apply latency during churn, µs.
    pub batch_p50_us: f64,
    /// p99 of per-batch apply latency during churn, µs.
    pub batch_p99_us: f64,
    /// `|objective() − exact_objective()|` after the whole replay —
    /// the running-sum drift the Kahan accumulation bounds.
    pub objective_drift: f64,
    /// Exact engine objective at the end of the replay.
    pub final_objective: f64,
    /// Active flows at the end of the replay.
    pub final_flows: usize,
}

/// Runs the scale tier: mint the gateway workload, solve it statically
/// with [`gtp_sharded`], then replay it through the online engine in
/// `params.batch`-sized batches (bulk load, then a 50/50
/// arrival/departure churn stream).
pub fn scale_bench(seed: u64, params: ScaleParams) -> Result<ScaleBench, String> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5CA1E);
    // Average degree ≈ 8 keeps BFS paths short without densifying the
    // CSR rows into quadratic territory.
    let p = 8.0 / (params.nodes.saturating_sub(1).max(1)) as f64;
    let graph = tdmd_graph::generators::erdos_renyi_connected(params.nodes, p.min(1.0), &mut rng);
    let gateways = GatewayWorkload::pick_gateways(params.nodes, params.gateways, &mut rng);
    let workload = GatewayWorkload::new(&graph, gateways, params.max_rate);
    let flows = workload.flows(&graph, 0, params.flows, &mut rng);

    // Static solve: the sharded-parallel scale variant over the whole
    // workload, with the gain-evaluation counter delta attributed.
    let inst = Instance::new(graph.clone(), flows.clone(), params.lambda, params.k)
        .map_err(|e| format!("scale instance: {e}"))?;
    let before = tdmd_core::obs::snapshot();
    let sw = Stopwatch::start();
    let dep = gtp_sharded(&inst, params.k).map_err(|e| format!("scale solve: {e}"))?;
    let solve_wall_us = sw.elapsed_us();
    let solve_gain_evals = tdmd_core::obs::snapshot().delta_since(&before).gain_evals;
    let solve_objective = normalize_zero(bandwidth_of(&inst, &dep));
    drop(inst);

    // Online replay under local-only repair: the oracle is what the
    // static solve above measures; here the meter is on the batched
    // event path itself, so telemetry stays off (NoopRecorder) and the
    // bench times whole `apply_batch` calls externally.
    let mut engine = OnlineEngine::new(
        graph.clone(),
        params.lambda,
        params.k,
        HopPricer::default(),
        RepairPolicy::local_only(4),
    )
    .map_err(|e| e.to_string())?;

    let mut batch_buf: Vec<Event> = Vec::with_capacity(params.batch);
    let sw = Stopwatch::start();
    let mut it = flows.iter();
    loop {
        batch_buf.clear();
        batch_buf.extend(it.by_ref().take(params.batch).map(|f| Event::FlowArrived {
            key: u64::from(f.id),
            rate: f.rate,
            path: f.path.clone(),
        }));
        if batch_buf.is_empty() {
            break;
        }
        engine
            .apply_batch(&batch_buf)
            .map_err(|e| format!("scale load: {e}"))?;
    }
    let load_wall_us = sw.elapsed_us();

    // Churn: 50/50 departures of random active flows and arrivals of
    // freshly minted ones, batched.
    let mut active: Vec<u64> = flows.iter().map(|f| u64::from(f.id)).collect();
    let mut next_id = u32::try_from(flows.len()).map_err(|_| "flow ids overflow u32")?;
    drop(flows);
    let mut batch_lat: Vec<f64> = Vec::new();
    let mut remaining = params.churn_events;
    let sw = Stopwatch::start();
    while remaining > 0 {
        batch_buf.clear();
        for _ in 0..params.batch.min(remaining) {
            if rng.gen_bool(0.5) && !active.is_empty() {
                let victim = active.swap_remove(rng.gen_range(0..active.len()));
                batch_buf.push(Event::FlowDeparted { key: victim });
            } else {
                let f = workload.flow(&graph, next_id, &mut rng);
                next_id += 1;
                active.push(u64::from(f.id));
                batch_buf.push(Event::FlowArrived {
                    key: u64::from(f.id),
                    rate: f.rate,
                    path: f.path,
                });
            }
        }
        remaining -= batch_buf.len();
        let bsw = Stopwatch::start();
        engine
            .apply_batch(&batch_buf)
            .map_err(|e| format!("scale churn: {e}"))?;
        batch_lat.push(bsw.elapsed_us());
    }
    let churn_wall_us = sw.elapsed_us();
    batch_lat.sort_by(f64::total_cmp);

    let final_objective = engine.exact_objective();
    let objective_drift = (engine.objective() - final_objective).abs();
    Ok(ScaleBench {
        schema: SCALE_SCHEMA.to_string(),
        seed,
        params,
        solve_wall_us: round_metric(solve_wall_us, 3),
        solve_gain_evals,
        gain_evals_per_sec: round_metric(
            solve_gain_evals as f64 / (solve_wall_us / 1e6).max(1e-9),
            3,
        ),
        solve_objective,
        load_wall_us: round_metric(load_wall_us, 3),
        load_events_per_sec: round_metric(params.flows as f64 / (load_wall_us / 1e6).max(1e-9), 3),
        churn_wall_us: round_metric(churn_wall_us, 3),
        events_per_sec: round_metric(
            params.churn_events as f64 / (churn_wall_us / 1e6).max(1e-9),
            3,
        ),
        batch_p50_us: round_metric(percentile(&batch_lat, 50.0), 3),
        batch_p99_us: round_metric(percentile(&batch_lat, 99.0), 3),
        objective_drift,
        final_objective: normalize_zero(final_objective),
        final_flows: engine.active_count(),
    })
}

/// The two paper-default scenarios, with their bench names.
fn scenarios() -> [(&'static str, Scenario, bool); 2] {
    [
        ("tree-default", Scenario::tree_default(), true),
        ("general-default", Scenario::general_default(), false),
    ]
}

fn instance_for(seed: u64, s: Scenario, is_tree: bool) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    if is_tree {
        tree_instance(&mut rng, s)
    } else {
        general_instance(&mut rng, s)
    }
}

/// Times one solver and attributes the engine counter delta to it.
fn measure_solve(
    name: &'static str,
    scenario: &str,
    inst: &Instance,
    solve: &dyn Fn(&Instance) -> Result<Deployment, TdmdError>,
) -> Result<SolveEntry, String> {
    let before = tdmd_core::obs::snapshot();
    let sw = Stopwatch::start();
    let dep = solve(inst).map_err(|e| format!("{scenario}/{name}: {e}"))?;
    let wall_us = sw.elapsed_us();
    let spent = tdmd_core::obs::snapshot().delta_since(&before);
    Ok(SolveEntry {
        scenario: scenario.to_string(),
        algorithm: name.to_string(),
        nodes: inst.node_count(),
        flows: inst.flows().len(),
        k: inst.k(),
        lambda: inst.lambda(),
        wall_us: round_metric(wall_us, 3),
        objective: normalize_zero(bandwidth_of(inst, &dep)),
        counters: SolveCounters {
            gain_evals: spent.gain_evals,
            lazy_pops: spent.lazy_pops,
            lazy_stale_refreshes: spent.lazy_stale_refreshes,
            guard_checks: spent.guard_checks,
            guard_activations: spent.guard_activations,
        },
    })
}

/// A named GTP driver as the bench exercises it.
type Variant = (
    &'static str,
    fn(&Instance, usize) -> Result<Deployment, TdmdError>,
);

/// Runs every scenario through the four GTP drivers.
pub fn solve_bench(seed: u64) -> Result<SolveBench, String> {
    const VARIANTS: [Variant; 4] = [
        ("gtp_eager", gtp_budgeted),
        ("gtp_lazy", gtp_lazy),
        ("gtp_parallel", gtp_parallel),
        ("gtp_sharded", gtp_sharded),
    ];
    let mut entries = Vec::new();
    for (name, s, is_tree) in scenarios() {
        let inst = instance_for(seed, s, is_tree);
        for (alg, solve) in VARIANTS {
            entries.push(measure_solve(alg, name, &inst, &|i| solve(i, s.k))?);
        }
    }
    Ok(SolveBench {
        schema: SOLVE_SCHEMA.to_string(),
        seed,
        entries,
    })
}

/// Synthesizes a churn stream from the scenario's workload (uniform
/// arrivals, geometric-flavoured holds — same shape as `stream gen`).
fn spans_for(inst: &Instance, seed: u64) -> Vec<FlowSpan> {
    let duration = 1_000_000u64;
    let mean_hold = duration / 4;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x57_AE_A0);
    inst.flows()
        .iter()
        .map(|flow| {
            let start_us = rng.gen_range(0..duration);
            let u = (rng.gen_range(1..=1000) as f64) / 1000.0;
            let hold = ((-u.ln()) * mean_hold as f64).ceil() as u64;
            FlowSpan {
                start_us,
                end_us: start_us + hold.max(1),
                flow: flow.clone(),
            }
        })
        .collect()
}

/// Replays every scenario's synthetic stream under both policies.
pub fn stream_bench(seed: u64) -> Result<StreamBench, String> {
    let mut entries = Vec::new();
    for (name, s, is_tree) in scenarios() {
        let inst = instance_for(seed, s, is_tree);
        let spans = spans_for(&inst, seed);
        let events = events_from_spans(&spans);
        for (policy_name, policy) in [
            ("incremental", RepairPolicy::default()),
            ("replanned", RepairPolicy::forced_replan()),
        ] {
            let recorder = StatsRecorder::new();
            let mut engine = OnlineEngine::with_recorder(
                inst.graph().clone(),
                s.lambda,
                s.k,
                HopPricer::default(),
                policy,
                &recorder,
            )
            .map_err(|e| e.to_string())?;
            let sw = Stopwatch::start();
            for ev in &events {
                engine
                    .apply(&ev.event)
                    .map_err(|e| format!("{name}/{policy_name}: {e}"))?;
            }
            let wall_us = sw.elapsed_us();
            let lat = recorder.sorted_samples(obs_keys::EVENT_APPLY_US);
            let stats = engine.stats();
            entries.push(StreamEntry {
                scenario: name.to_string(),
                policy: policy_name.to_string(),
                events: events.len(),
                wall_us: round_metric(wall_us, 3),
                objective: normalize_zero(engine.exact_objective()),
                latency_us: LatencyUs {
                    p50: round_metric(percentile(&lat, 50.0), 3),
                    p90: round_metric(percentile(&lat, 90.0), 3),
                    p99: round_metric(percentile(&lat, 99.0), 3),
                    max: round_metric(lat.last().copied().unwrap_or(0.0), 3),
                },
                counters: StreamCounters {
                    arrivals: recorder.counter(obs_keys::ARRIVALS),
                    departures: recorder.counter(obs_keys::DEPARTURES),
                    adds: stats.adds,
                    drops: stats.drops,
                    swaps: stats.swaps,
                    replans: recorder.counter(obs_keys::REPLANS),
                },
            });
        }
    }
    Ok(StreamBench {
        schema: STREAM_SCHEMA.to_string(),
        seed,
        entries,
    })
}

/// The migration-budget sweep: the general-default churn stream
/// replayed under drift-sampled incremental repair at decreasing
/// reconfiguration budgets (plus one hysteresis and one
/// flow-cost point), each compared against the unlimited baseline on
/// the mean maintained objective and the moves/event rate.
pub fn reconfig_bench(seed: u64) -> Result<ReconfigBench, String> {
    let s = Scenario::general_default();
    let mut rng = StdRng::seed_from_u64(seed);
    let inst = general_instance(&mut rng, s);
    let spans = spans_for(&inst, seed);
    let events = events_from_spans(&spans);
    if events.is_empty() {
        return Err("reconfig bench: empty event stream".to_string());
    }
    let sweep: Vec<(&str, ReconfigBudget)> = vec![
        ("unlimited", ReconfigBudget::unlimited()),
        ("windowed-8/16", ReconfigBudget::windowed(8.0, 16)),
        ("windowed-4/64", ReconfigBudget::windowed(4.0, 64)),
        ("windowed-2/256", ReconfigBudget::windowed(2.0, 256)),
        (
            "windowed-2/256+hyst-0.25",
            ReconfigBudget::windowed(2.0, 256).with_hysteresis(0.25),
        ),
        (
            "windowed-8/16+flow-cost",
            ReconfigBudget::windowed(8.0, 16).with_costs(1.0, 0.05),
        ),
    ];
    let mut entries = Vec::new();
    let mut baseline_mean = 0.0;
    for (name, budget) in sweep {
        let policy = RepairPolicy {
            sample_every: 64,
            budget,
            ..RepairPolicy::default()
        };
        let mut engine = OnlineEngine::new(
            inst.graph().clone(),
            s.lambda,
            s.k,
            HopPricer::default(),
            policy,
        )
        .map_err(|e| format!("reconfig/{name}: {e}"))?;
        let mut obj_sum = 0.0;
        for ev in &events {
            engine
                .apply(&ev.event)
                .map_err(|e| format!("reconfig/{name}: {e}"))?;
            obj_sum += engine.objective();
        }
        let mean_objective = normalize_zero(obj_sum / events.len() as f64);
        if name == "unlimited" {
            baseline_mean = mean_objective;
        }
        let gap = if baseline_mean > 0.0 {
            mean_objective / baseline_mean - 1.0
        } else {
            0.0
        };
        let stats = engine.stats();
        entries.push(ReconfigEntry {
            name: name.to_string(),
            refill_per_event: if budget.is_unlimited() {
                0.0
            } else {
                budget.refill_per_event
            },
            burst: if budget.is_unlimited() {
                0.0
            } else {
                budget.burst
            },
            box_move_cost: budget.box_move_cost,
            flow_reassign_cost: budget.flow_reassign_cost,
            hysteresis: budget.hysteresis,
            events: events.len(),
            boxes_moved: stats.boxes_moved,
            flows_reassigned: stats.flows_reassigned,
            moves_per_event: round_metric(stats.boxes_moved as f64 / events.len() as f64, 6),
            budget_deferrals: stats.budget_deferrals,
            budget_spent: round_metric(stats.budget_spent, 6),
            mean_objective,
            objective_gap_vs_unconstrained: round_metric(normalize_zero(gap), 6),
        });
    }
    Ok(ReconfigBench {
        schema: RECONFIG_SCHEMA.to_string(),
        seed,
        entries,
    })
}

/// Route-diversity sweep: the general-default scenario re-drawn with
/// `k_paths ∈ {1, 2, 3, 4}` candidates per flow, each entry solved
/// jointly and compared against its own fixed-path GTP baseline.
pub fn joint_bench(seed: u64) -> Result<JointBench, String> {
    let s = Scenario::general_default();
    let mut entries = Vec::new();
    for k_paths in 1..=4usize {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = general_pathset_instance(&mut rng, s, k_paths);
        let recorder = StatsRecorder::new();
        let sw = Stopwatch::start();
        let sol = joint_solve_with(&inst, &JointConfig::default(), &recorder)
            .map_err(|e| format!("joint/k_paths={k_paths}: {e}"))?;
        let wall_us = sw.elapsed_us();
        let lp_samples = recorder.sorted_samples(tdmd_obs::keys::LP_BOUND_US);
        entries.push(JointEntry {
            scenario: "general-default".to_string(),
            k_paths,
            nodes: inst.node_count(),
            flows: inst.flows().len(),
            k: inst.k(),
            lambda: inst.lambda(),
            wall_us: round_metric(wall_us, 3),
            objective: normalize_zero(sol.objective),
            fixed_objective: normalize_zero(sol.fixed_objective),
            lp_bound: normalize_zero(sol.lp_bound),
            rounds: sol.rounds,
            path_switches: sol.path_switches,
            lp_bound_us: round_metric(lp_samples.last().copied().unwrap_or(0.0), 3),
        });
    }
    Ok(JointBench {
        schema: JOINT_SCHEMA.to_string(),
        seed,
        entries,
    })
}

/// One long multi-tenant replay through the serve loop's NDJSON
/// pipeline (`target_events` ≈ the stream length; flows = half). The
/// stream is generated by the same gravity lowering as
/// `tdmd serve gen`, snapshot at mid-stream, and the tail is replayed
/// through a restored session: the bench *fails* unless the restored
/// run finishes bitwise-identical (deployment + exact objective) to
/// the uninterrupted one.
pub fn serve_bench(seed: u64, target_events: usize) -> Result<ServeBench, String> {
    use tdmd_serve::{ServeConfig, ServeSession, Telemetry, WireRecord};

    let mut rng = StdRng::seed_from_u64(seed ^ 0x5E_44E);
    let graph = tdmd_graph::generators::random::erdos_renyi_connected(140, 0.05, &mut rng);
    let lines = crate::commands::serve::generate_events(
        &graph,
        3,
        400_000,
        target_events.div_ceil(2).max(1),
        1_000_000,
        250_000,
        seed,
    )?;
    let cut = lines.len() / 2;
    let mut full = lines[..cut].join("\n");
    full.push_str("\n\"Snapshot\"\n");
    full.push_str(&lines[cut..].join("\n"));
    full.push('\n');
    let mut tail = lines[cut..].join("\n");
    tail.push('\n');

    let bye_of = |out: &[u8]| -> Result<Telemetry, String> {
        let text = std::str::from_utf8(out).map_err(|e| e.to_string())?;
        let last = text.lines().last().ok_or("serve loop wrote no records")?;
        match serde_json::from_str(last).map_err(|e| e.to_string())? {
            WireRecord::Bye { telemetry } => Ok(telemetry),
            other => Err(format!("expected a final Bye record, got {other:?}")),
        }
    };
    let config = ServeConfig::default();
    let policy = RepairPolicy::default();

    let engine = OnlineEngine::new(graph.clone(), 0.5, 8, HopPricer::default(), policy)
        .map_err(|e| e.to_string())?;
    let mut live = ServeSession::new(engine, config.clone());
    let mut live_out = Vec::new();
    let sw = Stopwatch::start();
    live.run(full.as_bytes(), &mut live_out)
        .map_err(|e| format!("serve replay: {e}"))?;
    let wall_us = sw.elapsed_us();
    let a = bye_of(&live_out)?;

    let snap = live
        .last_snapshot()
        .ok_or("the Snapshot control line left no snapshot")?;
    let mut restored = ServeSession::restore(graph, HopPricer::default(), policy, config, snap)
        .map_err(|e| format!("serve restore: {e}"))?;
    let mut tail_out = Vec::new();
    restored
        .run(tail.as_bytes(), &mut tail_out)
        .map_err(|e| format!("serve tail replay: {e}"))?;
    let b = bye_of(&tail_out)?;
    let restore_bitwise = a.deployment == b.deployment
        && a.objective.to_bits() == b.objective.to_bits()
        && a.active_flows == b.active_flows
        && a.degraded_flows == b.degraded_flows;
    if !restore_bitwise {
        return Err(format!(
            "snapshot restore diverged from the uninterrupted run: \
             {:?}/{} vs {:?}/{}",
            a.deployment, a.objective, b.deployment, b.objective
        ));
    }

    Ok(ServeBench {
        schema: SERVE_SCHEMA.to_string(),
        seed,
        events: lines.len(),
        wall_us: round_metric(wall_us, 3),
        events_per_sec: round_metric(lines.len() as f64 / (wall_us / 1e6).max(1e-9), 3),
        snapshot_at: snap.events,
        restore_bitwise,
        event_p50_us: round_metric(a.event_p50_us.unwrap_or(0.0), 3),
        event_p99_us: round_metric(a.event_p99_us.unwrap_or(0.0), 3),
        tenants: a
            .tenants
            .iter()
            .map(|t| ServeTenantEntry {
                tenant: t.tenant,
                events: t.events,
                served_bw: t.served_bw,
                degraded_bw: t.degraded_bw,
                apply_p50_us: round_metric(t.apply_p50_us.unwrap_or(0.0), 3),
                apply_p99_us: round_metric(t.apply_p99_us.unwrap_or(0.0), 3),
            })
            .collect(),
    })
}

/// `tdmd bench [--seed S] [--out-dir DIR] [--serve-events N]
/// [--scale true]`
///
/// Writes `BENCH_solve.json`, `BENCH_stream.json`,
/// `BENCH_joint.json`, `BENCH_serve.json` and `BENCH_reconfig.json`
/// into `DIR` (default `.`) and prints a
/// one-line-per-entry summary. With `--scale true` it instead runs the
/// million-flow scale tier and writes only `BENCH_scale.json`
/// (smoke-sized when `TDMD_BENCH_SMOKE` is set).
pub fn bench(args: &Args) -> Result<String, String> {
    let seed: u64 = args.num("seed", 42)?;
    let out_dir = args.optional("out-dir").unwrap_or(".");
    let serve_events: usize = args.num("serve-events", 100_000)?;

    if args.flag("scale")? {
        let scale = scale_bench(seed, ScaleParams::from_env())?;
        let scale_path = format!("{out_dir}/BENCH_scale.json");
        write_out(
            &scale_path,
            &serde_json::to_string_pretty(&scale).map_err(|e| e.to_string())?,
        )?;
        return Ok(format!(
            "seed {seed}\n== scale ({scale_path}) ==\n  {} nodes  {} flows  k={}\n  \
             solve {:.0} µs  {:.0} gain evals/sec  objective {:.2}\n  \
             load {:.0} events/sec  churn {:.0} events/sec  batch p99 {:.1} µs\n  \
             drift {:e}  final flows {}\n",
            scale.params.nodes,
            scale.params.flows,
            scale.params.k,
            scale.solve_wall_us,
            scale.gain_evals_per_sec,
            scale.solve_objective,
            scale.load_events_per_sec,
            scale.events_per_sec,
            scale.batch_p99_us,
            scale.objective_drift,
            scale.final_flows,
        ));
    }

    let solve = solve_bench(seed)?;
    let stream = stream_bench(seed)?;
    let joint = joint_bench(seed)?;
    let serve = serve_bench(seed, serve_events)?;
    let reconfig = reconfig_bench(seed)?;

    let solve_path = format!("{out_dir}/BENCH_solve.json");
    let stream_path = format!("{out_dir}/BENCH_stream.json");
    let joint_path = format!("{out_dir}/BENCH_joint.json");
    let serve_path = format!("{out_dir}/BENCH_serve.json");
    let reconfig_path = format!("{out_dir}/BENCH_reconfig.json");
    write_out(
        &solve_path,
        &serde_json::to_string_pretty(&solve).map_err(|e| e.to_string())?,
    )?;
    write_out(
        &stream_path,
        &serde_json::to_string_pretty(&stream).map_err(|e| e.to_string())?,
    )?;
    write_out(
        &joint_path,
        &serde_json::to_string_pretty(&joint).map_err(|e| e.to_string())?,
    )?;
    write_out(
        &serve_path,
        &serde_json::to_string_pretty(&serve).map_err(|e| e.to_string())?,
    )?;
    write_out(
        &reconfig_path,
        &serde_json::to_string_pretty(&reconfig).map_err(|e| e.to_string())?,
    )?;

    let mut out = format!("seed {seed}\n== solve ({solve_path}) ==\n");
    for e in &solve.entries {
        out.push_str(&format!(
            "  {:>16}/{:<12} {:>10.0} µs  objective {:>10.2}  {} gain evals\n",
            e.scenario, e.algorithm, e.wall_us, e.objective, e.counters.gain_evals
        ));
    }
    out.push_str(&format!("== stream ({stream_path}) ==\n"));
    for e in &stream.entries {
        out.push_str(&format!(
            "  {:>16}/{:<12} {:>6} events  p99 {:>8.1} µs  {} replans\n",
            e.scenario, e.policy, e.events, e.latency_us.p99, e.counters.replans
        ));
    }
    out.push_str(&format!("== joint ({joint_path}) ==\n"));
    for e in &joint.entries {
        out.push_str(&format!(
            "  {:>16}/k_paths={} joint {:>10.2}  fixed {:>10.2}  lp bound {:>10.2}  \
             {} switches\n",
            e.scenario, e.k_paths, e.objective, e.fixed_objective, e.lp_bound, e.path_switches
        ));
    }
    out.push_str(&format!("== serve ({serve_path}) ==\n"));
    out.push_str(&format!(
        "  {} events  {:.0} events/sec  p99 {:.1} µs  snapshot @ {}  restore bitwise: {}\n",
        serve.events,
        serve.events_per_sec,
        serve.event_p99_us,
        serve.snapshot_at,
        serve.restore_bitwise
    ));
    for t in &serve.tenants {
        out.push_str(&format!(
            "  tenant {}: {} events  p50 {:.1} µs  p99 {:.1} µs  served {}  degraded {}\n",
            t.tenant, t.events, t.apply_p50_us, t.apply_p99_us, t.served_bw, t.degraded_bw
        ));
    }
    out.push_str(&format!("== reconfig ({reconfig_path}) ==\n"));
    for e in &reconfig.entries {
        out.push_str(&format!(
            "  {:>24}: {:.4} moves/event  {} deferrals  gap {:.2}%\n",
            e.name,
            e.moves_per_event,
            e.budget_deferrals,
            100.0 * e.objective_gap_vs_unconstrained
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(pairs: &[(&str, &str)]) -> Args {
        let flat: Vec<String> = pairs
            .iter()
            .flat_map(|(k, v)| [format!("--{k}"), v.to_string()])
            .collect();
        Args::parse(&flat).unwrap()
    }

    #[test]
    fn solve_bench_covers_every_scenario_and_variant() {
        let b = solve_bench(7).unwrap();
        assert_eq!(b.schema, SOLVE_SCHEMA);
        assert_eq!(b.entries.len(), 8, "2 scenarios × 4 GTP variants");
        for e in &b.entries {
            assert!(e.wall_us >= 0.0);
            assert!(e.objective > 0.0, "{}/{}", e.scenario, e.algorithm);
            assert!(e.counters.gain_evals > 0);
            assert!(e.flows > 0 && e.nodes > 0);
        }
        // The four variants must agree on the objective: they are
        // the same algorithm with different drivers.
        for chunk in b.entries.chunks(4) {
            assert!(chunk.windows(2).all(|w| w[0].objective == w[1].objective));
        }
    }

    #[test]
    fn scale_bench_reports_throughput_on_a_tiny_tier() {
        // Debug-build-sized params: the full tier and the CI smoke
        // tier share this exact code path.
        let params = ScaleParams {
            nodes: 48,
            flows: 1_500,
            churn_events: 600,
            batch: 128,
            k: 6,
            gateways: 3,
            lambda: 0.5,
            max_rate: 10,
        };
        let b = scale_bench(13, params).unwrap();
        assert_eq!(b.schema, SCALE_SCHEMA);
        assert_eq!(b.params.flows, 1_500);
        assert!(b.solve_gain_evals > 0);
        assert!(b.gain_evals_per_sec > 0.0);
        assert!(b.events_per_sec > 0.0);
        assert!(b.load_events_per_sec > 0.0);
        assert!(b.solve_objective > 0.0);
        assert!(b.batch_p50_us <= b.batch_p99_us);
        // Kahan accumulation keeps the running objective exact on
        // integral-rate workloads.
        assert_eq!(b.objective_drift, 0.0);
        // 50/50 churn: the active set stays near the loaded size.
        assert!(b.final_flows > 0);
        // The document round-trips through its published type.
        let json = serde_json::to_string(&b).unwrap();
        let back: ScaleBench = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema, SCALE_SCHEMA);
        assert_eq!(back.final_flows, b.final_flows);
    }

    #[test]
    fn bench_scale_flag_is_validated() {
        // Running either real tier is a release-build job (the CI
        // smoke step runs `tdmd bench --scale true` under
        // TDMD_BENCH_SMOKE); the debug test pins the flag parsing and
        // the tier selection table.
        let bad = bench(&args(&[("scale", "maybe")]));
        assert!(bad.unwrap_err().contains("expected true|false"));
        let full = ScaleParams::full_tier();
        assert_eq!(full.flows, 1_000_000, "the committed tier is 1M flows");
        assert!(full.nodes >= 1_000, "thousand-vertex topology");
        let smoke = ScaleParams::smoke();
        assert!(smoke.flows < full.flows / 10);
        assert!(smoke.gateways <= smoke.k, "guard stays trivially feasible");
        assert!(full.gateways <= full.k, "guard stays trivially feasible");
    }

    #[test]
    fn stream_bench_reports_latency_and_drains() {
        let b = stream_bench(7).unwrap();
        assert_eq!(b.schema, STREAM_SCHEMA);
        assert_eq!(b.entries.len(), 4, "2 scenarios × 2 policies");
        for e in &b.entries {
            assert!(e.events > 0);
            assert_eq!(e.counters.arrivals + e.counters.departures, e.events as u64);
            // Every span ends inside the horizon, so the stream
            // drains and the final objective is exactly zero, with a
            // positive sign (+0.0) at the formatting boundary.
            assert_eq!(e.objective.to_bits(), 0.0f64.to_bits());
            assert!(e.latency_us.p50 <= e.latency_us.p99);
            assert!(e.latency_us.p99 <= e.latency_us.max);
        }
    }

    #[test]
    fn joint_bench_certifies_the_route_diversity_sweep() {
        let b = joint_bench(42).unwrap();
        assert_eq!(b.schema, JOINT_SCHEMA);
        assert_eq!(b.entries.len(), 4, "k_paths 1..=4");
        for e in &b.entries {
            // The incumbent is seeded with the fixed-path baseline
            // and the LP bound is a valid relaxation: the sandwich
            // lp_bound ≤ objective ≤ fixed_objective always holds.
            assert!(e.objective <= e.fixed_objective, "k_paths={}", e.k_paths);
            assert!(e.lp_bound <= e.objective + 1e-9, "k_paths={}", e.k_paths);
            assert!(e.lp_bound >= 0.0);
            assert!(e.rounds >= 1);
        }
        // A singleton candidate set *is* the fixed-path problem.
        let singleton = &b.entries[0];
        assert_eq!(singleton.k_paths, 1);
        assert_eq!(singleton.objective, singleton.fixed_objective);
        assert_eq!(singleton.path_switches, 0);
        // With ≥ 3 candidate routes per flow the joint solver finds a
        // strictly better routing than fixed-path GTP on this seed.
        let diverse = b.entries.iter().find(|e| e.k_paths >= 3).unwrap();
        assert!(
            diverse.objective < diverse.fixed_objective,
            "k_paths={} joint {} ≥ fixed {}",
            diverse.k_paths,
            diverse.objective,
            diverse.fixed_objective
        );
    }

    #[test]
    fn reconfig_bench_sweeps_budgets_against_the_unlimited_baseline() {
        let b = reconfig_bench(42).unwrap();
        assert_eq!(b.schema, RECONFIG_SCHEMA);
        assert!(b.entries.len() >= 5, "baseline + at least 4 sweep points");
        let base = &b.entries[0];
        assert_eq!(base.name, "unlimited");
        assert_eq!(base.objective_gap_vs_unconstrained, 0.0);
        assert_eq!(base.budget_deferrals, 0, "an infinite bucket never defers");
        assert_eq!(base.budget_spent, 0.0, "unlimited moves are free");
        assert!(base.boxes_moved > 0 && base.mean_objective > 0.0);
        for e in &b.entries[1..] {
            assert!(e.events == base.events, "{}: same stream", e.name);
            // Amortized spend bound: burst + refill × events, plus
            // the post-hoc flow debit of the overdrawing move (one
            // move's reassignments ≤ the total, so this slack is a
            // provable over-approximation).
            let cap = e.burst
                + e.refill_per_event * e.events as f64
                + e.flow_reassign_cost * e.flows_reassigned as f64;
            assert!(
                e.budget_spent <= cap + 1e-6,
                "{}: spent {} > cap {}",
                e.name,
                e.budget_spent,
                cap
            );
            // A finite budget can only reduce migration activity.
            assert!(
                e.boxes_moved <= base.boxes_moved,
                "{}: {} boxes > unconstrained {}",
                e.name,
                e.boxes_moved,
                base.boxes_moved
            );
            // The objective price of the budget stays a constant
            // factor, not a collapse — and a budget cannot make the
            // engine meaningfully *better* than unconstrained.
            assert!(
                e.objective_gap_vs_unconstrained < 0.5 && e.objective_gap_vs_unconstrained > -0.05,
                "{}: gap {}",
                e.name,
                e.objective_gap_vs_unconstrained
            );
        }
        // At least one tight point actually deferred something,
        // otherwise the sweep is not exercising the budget.
        assert!(b.entries[1..].iter().any(|e| e.budget_deferrals > 0));
        // Determinism: the committed artifact never churns.
        let again = reconfig_bench(42).unwrap();
        let a = serde_json::to_string(&b).unwrap();
        let c = serde_json::to_string(&again).unwrap();
        assert_eq!(a, c, "reconfig bench is bit-deterministic");
    }

    #[test]
    fn serve_bench_checks_restore_and_reports_per_tenant_percentiles() {
        let b = serve_bench(9, 2_000).unwrap();
        assert_eq!(b.schema, SERVE_SCHEMA);
        assert!(b.events >= 1_000);
        assert!(b.restore_bitwise, "bench must certify the restore");
        assert!(b.events_per_sec > 0.0);
        assert!(b.snapshot_at > 0 && b.snapshot_at < b.events as u64);
        assert_eq!(b.tenants.len(), 3, "3 traffic classes");
        for t in &b.tenants {
            assert!(t.events > 0, "tenant {}", t.tenant);
            assert!(t.apply_p50_us <= t.apply_p99_us, "tenant {}", t.tenant);
        }
    }

    #[test]
    fn bench_writes_schema_stable_json() {
        let dir = std::env::temp_dir().join("tdmd-cli-test-bench");
        let out = bench(&args(&[
            ("seed", "11"),
            ("out-dir", &dir.display().to_string()),
            // Keep the serve replay short in the debug-build test;
            // the committed artifact uses the 100k default.
            ("serve-events", "2000"),
        ]))
        .unwrap();
        assert!(out.contains("== solve"));
        assert!(out.contains("== stream"));
        assert!(out.contains("== serve"));
        // Golden-schema check: the emitted JSON must round-trip into
        // the published document types.
        let solve: SolveBench =
            serde_json::from_str(&std::fs::read_to_string(dir.join("BENCH_solve.json")).unwrap())
                .unwrap();
        assert_eq!(solve.schema, SOLVE_SCHEMA);
        assert_eq!(solve.seed, 11);
        assert!(!solve.entries.is_empty());
        let stream: StreamBench =
            serde_json::from_str(&std::fs::read_to_string(dir.join("BENCH_stream.json")).unwrap())
                .unwrap();
        assert_eq!(stream.schema, STREAM_SCHEMA);
        assert!(!stream.entries.is_empty());
        let joint: JointBench =
            serde_json::from_str(&std::fs::read_to_string(dir.join("BENCH_joint.json")).unwrap())
                .unwrap();
        assert_eq!(joint.schema, JOINT_SCHEMA);
        assert_eq!(joint.entries.len(), 4);
        let serve: ServeBench =
            serde_json::from_str(&std::fs::read_to_string(dir.join("BENCH_serve.json")).unwrap())
                .unwrap();
        assert_eq!(serve.schema, SERVE_SCHEMA);
        assert!(serve.restore_bitwise);
        let reconfig: ReconfigBench = serde_json::from_str(
            &std::fs::read_to_string(dir.join("BENCH_reconfig.json")).unwrap(),
        )
        .unwrap();
        assert_eq!(reconfig.schema, RECONFIG_SCHEMA);
        assert_eq!(reconfig.entries[0].name, "unlimited");
    }

    #[test]
    fn bench_is_deterministic_in_everything_but_time() {
        let a = solve_bench(3).unwrap();
        let b = solve_bench(3).unwrap();
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.objective, y.objective);
            assert_eq!(x.flows, y.flows);
            // Counter deltas are merged across concurrent solves
            // (tests in this binary run in parallel), so only their
            // presence is stable here.
            assert!(x.counters.gain_evals > 0 && y.counters.gain_evals > 0);
        }
    }
}
