//! `tdmd stream` — span-file generation, churn replay and fault
//! injection.
//!
//! `stream gen` lowers a static workload to a span file (each flow
//! gets a random lifetime inside the scenario horizon); `stream run`
//! replays a span file through the incremental engine and reports
//! per-event repair latency percentiles, throughput, and the
//! objective-vs-oracle gap; `stream inject` replays the same spans
//! under a seeded failure schedule (independent MTBF/MTTR or targeted
//! kills) and reports the degradation/repair telemetry.

use crate::args::Args;
use crate::commands::{budget_from, load_topology, load_workload, write_out};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdmd_obs::{normalize_zero, percentile, StatsRecorder, Stopwatch};
use tdmd_online::{
    events_from_spans, obs_keys, FlowSpan, HopPricer, OnlineEngine, PathPricer, RepairPolicy,
};
use tdmd_sim::chaos::{run_chaos, ChaosConfig, ChaosMode};
use tdmd_sim::timeline::DynamicScenario;

/// `tdmd stream gen --workload wl.json --duration D [--mean-hold H]
/// [--seed S] --out spans.json`
///
/// Every flow of the workload receives a uniform-random arrival in
/// `[0, D − 1]` and an exponential-ish hold time around `H`
/// (clamped to at least 1 µs), producing a churn scenario with the
/// same spatial structure as the static workload.
pub fn generate(args: &Args) -> Result<String, String> {
    let flows = load_workload(args.required("workload")?)?;
    let duration: u64 = args.num("duration", 1_000_000)?;
    if duration == 0 {
        return Err("--duration must be positive".to_string());
    }
    let mean_hold: u64 = args.num("mean-hold", duration / 4)?;
    let seed: u64 = args.num("seed", 0)?;
    let out_path = args.required("out")?;

    let mut rng = StdRng::seed_from_u64(seed);
    let spans: Vec<FlowSpan> = flows
        .into_iter()
        .map(|flow| {
            let start_us = rng.gen_range(0..duration);
            // Geometric-flavoured hold time: the product of a uniform
            // pair stretches the tail without needing a distr crate.
            let u = (rng.gen_range(1..=1000) as f64) / 1000.0;
            let hold = ((-u.ln()) * mean_hold.max(1) as f64).ceil() as u64;
            FlowSpan {
                start_us,
                end_us: start_us + hold.max(1),
                flow,
            }
        })
        .collect();

    let n = spans.len();
    let json = serde_json::to_string_pretty(&spans).map_err(|e| e.to_string())?;
    write_out(out_path, &json)?;
    Ok(format!(
        "{n} spans over [0, {duration}) µs (mean hold ≈ {mean_hold} µs) written to {out_path}\n"
    ))
}

/// Loads a span JSON file (a `Vec<FlowSpan>`).
pub fn load_spans(path: &str) -> Result<Vec<FlowSpan>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))
}

/// `tdmd stream run --topo t.json --spans spans.json --lambda L --k K
/// [--policy incremental|replanned] [--move-budget N] [--eps E]
/// [--sample-every N] [--budget R] [--burst B] [--box-cost C]
/// [--flow-cost C] [--hysteresis M] [--oracle-every N] [--audit true]`
///
/// Replays the span file event by event, measuring the wall-clock
/// latency of each apply+repair step, and samples the gap between the
/// maintained objective and a from-scratch GTP solve every
/// `--oracle-every` events (0 disables gap sampling; the final event
/// is always sampled). With `--budget`, repair moves are admitted
/// against a migration token bucket (see
/// [`tdmd_online::ReconfigBudget`]) and the report adds the
/// moves/deferral/spend accounting.
pub fn run(args: &Args) -> Result<String, String> {
    let graph = load_topology(args.required("topo")?)?;
    let spans = load_spans(args.required("spans")?)?;
    let lambda: f64 = args.num_required("lambda")?;
    let k: usize = args.num_required("k")?;
    let policy_name = args.optional("policy").unwrap_or("incremental");
    let policy = match policy_name {
        "incremental" => RepairPolicy {
            move_budget: args.num("move-budget", 4)?,
            drift_eps: args.num("eps", 0.05)?,
            sample_every: args.num("sample-every", 256)?,
            budget: budget_from(args)?,
            ..RepairPolicy::default()
        },
        "replanned" => RepairPolicy::forced_replan(),
        other => return Err(format!("unknown policy '{other}' (incremental|replanned)")),
    };
    let oracle_every: u64 = args.num("oracle-every", 0)?;
    let audit = args.flag("audit")?;

    let pricer = HopPricer::default();
    let recorder = StatsRecorder::new();
    let mut engine =
        OnlineEngine::with_recorder(graph, lambda, k, HopPricer::default(), policy, &recorder)
            .map_err(|e| e.to_string())?;
    if audit {
        engine.enable_audit();
    }
    let events = events_from_spans(&spans);
    if events.is_empty() {
        return Ok("no events (every span is zero-length)\n".to_string());
    }

    let mut gaps: Vec<f64> = Vec::new();
    let total = events.len() as u64;
    let replay_start = Stopwatch::start();
    for (i, ev) in events.iter().enumerate() {
        engine.apply(&ev.event).map_err(|e| e.to_string())?;

        let is_last = i as u64 + 1 == total;
        let sampled = oracle_every > 0 && (i as u64 + 1).is_multiple_of(oracle_every);
        if (sampled || is_last) && engine.active_count() > 0 {
            let inst = engine.snapshot_instance().map_err(|e| e.to_string())?;
            if let Ok(oracle) = pricer.solve_oracle(&inst) {
                let oracle_obj = engine.evaluate_deployment(&oracle);
                if oracle_obj > 0.0 {
                    gaps.push(engine.objective() / oracle_obj - 1.0);
                }
            }
        }
    }
    let replay_secs = replay_start.elapsed_secs();

    let latencies_us = recorder.sorted_samples(obs_keys::EVENT_APPLY_US);
    let stats = engine.stats();
    let mut out = format!(
        "policy:       {policy_name}\nevents:       {total} ({} arrivals, {} departures)\n\
         events/sec:   {:.0}\nlatency p50:  {:.1} µs\nlatency p90:  {:.1} µs\n\
         latency p99:  {:.1} µs\nlatency max:  {:.1} µs\n",
        stats.arrivals,
        stats.departures,
        total as f64 / replay_secs.max(1e-9),
        percentile(&latencies_us, 50.0),
        percentile(&latencies_us, 90.0),
        percentile(&latencies_us, 99.0),
        latencies_us.last().copied().unwrap_or(0.0),
    );
    out.push_str(&format!(
        "repairs:      {} adds, {} drops, {} swaps, {} replans\n",
        stats.adds, stats.drops, stats.swaps, stats.replans
    ));
    out.push_str(&format!(
        "migrations:   {} boxes moved, {} flows reassigned ({:.3} moves/event)\n",
        stats.boxes_moved,
        stats.flows_reassigned,
        stats.boxes_moved as f64 / total as f64,
    ));
    if !engine.budget_tokens().is_infinite() {
        out.push_str(&format!(
            "budget:       {:.2} tokens spent, {} deferrals, {:.2} tokens left\n",
            stats.budget_spent,
            stats.budget_deferrals,
            engine.budget_tokens()
        ));
    }
    if gaps.is_empty() {
        out.push_str("oracle gap:   n/a (stream drained or oracle infeasible)\n");
    } else {
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let max = gaps.iter().cloned().fold(0.0f64, f64::max);
        out.push_str(&format!(
            "oracle gap:   mean {:.2}% / max {:.2}% over {} samples\n",
            100.0 * mean,
            100.0 * max,
            gaps.len()
        ));
    }
    out.push_str(&format!(
        "final state:  {} active flows, objective {:.2}, {} middleboxes\n",
        engine.active_count(),
        normalize_zero(engine.exact_objective()),
        engine.deployment().len()
    ));
    if audit {
        tdmd_online::audit::check_engine(&engine).map_err(|e| format!("audit: {e}"))?;
        out.push_str(&format!(
            "audit:        engine invariants held after every one of {total} events\n"
        ));
    }
    Ok(out)
}

/// `tdmd stream inject --topo t.json --spans spans.json --lambda L
/// --k K [--mode independent|targeted] [--mtbf-us N] [--mttr-us N]
/// [--period-us N] [--seed S] [--policy incremental|replanned|local]
/// [--move-budget N] [--eps E] [--sample-every N] [--budget R]
/// [--burst B] [--box-cost C] [--flow-cost C] [--hysteresis M]`
///
/// Replays the span file through the incremental engine while
/// injecting middlebox failures: `independent` draws per-vertex
/// exponential up/down phases (means `--mtbf-us` / `--mttr-us`);
/// `targeted` kills the highest-loaded deployed vertex every
/// `--period-us`, recovering it `--mttr-us` later. Reports failures,
/// orphaned/degraded flows, degraded flow-time, and post-failure
/// repair latency percentiles.
pub fn inject(args: &Args) -> Result<String, String> {
    let graph = load_topology(args.required("topo")?)?;
    let spans = load_spans(args.required("spans")?)?;
    let lambda: f64 = args.num_required("lambda")?;
    let k: usize = args.num_required("k")?;
    let mttr_us: u64 = args.num("mttr-us", 2_000)?;
    let seed: u64 = args.num("seed", 0)?;
    let mode_name = args.optional("mode").unwrap_or("independent");
    let mode = match mode_name {
        "independent" => ChaosMode::Independent {
            mtbf_us: args.num("mtbf-us", 10_000)?,
            mttr_us,
        },
        "targeted" => ChaosMode::Targeted {
            period_us: args.num("period-us", 5_000)?,
            mttr_us,
        },
        other => return Err(format!("unknown mode '{other}' (independent|targeted)")),
    };
    let policy_name = args.optional("policy").unwrap_or("incremental");
    let policy = match policy_name {
        "incremental" => RepairPolicy {
            move_budget: args.num("move-budget", 4)?,
            drift_eps: args.num("eps", 0.05)?,
            sample_every: args.num("sample-every", 256)?,
            budget: budget_from(args)?,
            ..RepairPolicy::default()
        },
        "replanned" => RepairPolicy::forced_replan(),
        "local" => RepairPolicy {
            budget: budget_from(args)?,
            ..RepairPolicy::local_only(args.num("move-budget", 4)?)
        },
        other => {
            return Err(format!(
                "unknown policy '{other}' (incremental|replanned|local)"
            ))
        }
    };

    let scn = DynamicScenario {
        graph,
        lambda,
        k,
        spans,
    };
    let report = run_chaos(&scn, policy, &ChaosConfig { mode, seed }).map_err(|e| e.to_string())?;

    let lat = &report.repair_latency_us;
    let mut out = format!(
        "mode:           {mode_name} (seed {seed})\npolicy:         {policy_name}\n\
         failures:       {} ({} recoveries)\nflows orphaned: {} ({} degraded)\n\
         degraded time:  {} flow·µs\n",
        report.failures,
        report.recoveries,
        report.flows_orphaned,
        report.flows_degraded,
        report.degraded_flow_us,
    );
    if lat.is_empty() {
        out.push_str("repair latency: n/a (no failures injected)\n");
    } else {
        out.push_str(&format!(
            "repair latency: p50 {:.1} µs / p90 {:.1} µs / p99 {:.1} µs over {} failures\n",
            percentile(lat, 50.0),
            percentile(lat, 90.0),
            percentile(lat, 99.0),
            lat.len()
        ));
    }
    out.push_str(&format!(
        "migrations:     {} boxes moved, {} flows reassigned\n",
        report.boxes_moved, report.flows_reassigned
    ));
    if report.budget_spent > 0.0 || report.budget_deferrals > 0 {
        out.push_str(&format!(
            "budget:         {:.2} tokens spent, {} deferrals\n",
            report.budget_spent, report.budget_deferrals
        ));
    }
    match report.points.last() {
        Some(p) => out.push_str(&format!(
            "final state:    {} active flows, {} degraded, objective {:.2}, \
             {} middleboxes, {} failed vertices\n",
            p.active_flows,
            p.degraded_flows,
            normalize_zero(p.bandwidth),
            p.middleboxes,
            p.failed_vertices
        )),
        None => out.push_str("final state:    no events (every span is zero-length)\n"),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::{topo, workload};

    fn args(pairs: &[(&str, &str)]) -> Args {
        let flat: Vec<String> = pairs
            .iter()
            .flat_map(|(k, v)| [format!("--{k}"), v.to_string()])
            .collect();
        Args::parse(&flat).unwrap()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("tdmd-cli-test-{name}"))
            .display()
            .to_string()
    }

    fn fixture() -> (String, String) {
        let topo_path = tmp("stream-topo.json");
        topo::generate(&args(&[
            ("kind", "tree"),
            ("size", "14"),
            ("out", &topo_path),
        ]))
        .unwrap();
        let wl_path = tmp("stream-wl.json");
        workload::generate(&args(&[
            ("topo", &topo_path),
            ("count", "10"),
            ("out", &wl_path),
        ]))
        .unwrap();
        (topo_path, wl_path)
    }

    #[test]
    fn gen_writes_a_replayable_span_file() {
        let (_topo, wl) = fixture();
        let spans_path = tmp("stream-spans.json");
        let report = generate(&args(&[
            ("workload", &wl),
            ("duration", "1000"),
            ("seed", "7"),
            ("out", &spans_path),
        ]))
        .unwrap();
        assert!(report.contains("10 spans"));
        let spans = load_spans(&spans_path).unwrap();
        assert_eq!(spans.len(), 10);
        assert!(spans.iter().all(|s| s.start_us < s.end_us));
    }

    #[test]
    fn run_reports_latency_and_oracle_gap() {
        let (topo_path, wl) = fixture();
        let spans_path = tmp("stream-run-spans.json");
        generate(&args(&[
            ("workload", &wl),
            ("duration", "1000"),
            ("seed", "7"),
            ("out", &spans_path),
        ]))
        .unwrap();
        for policy in ["incremental", "replanned"] {
            let report = run(&args(&[
                ("topo", &topo_path),
                ("spans", &spans_path),
                ("lambda", "0.5"),
                ("k", "4"),
                ("policy", policy),
                ("oracle-every", "5"),
            ]))
            .unwrap();
            assert!(report.contains("latency p99:"), "{policy}: {report}");
            assert!(report.contains("oracle gap:"), "{policy}: {report}");
            assert!(report.contains("0 active flows"), "{policy}: {report}");
        }
    }

    #[test]
    fn audit_flag_checks_every_event_and_the_final_state() {
        let (topo_path, wl) = fixture();
        let spans_path = tmp("stream-audit-spans.json");
        generate(&args(&[
            ("workload", &wl),
            ("duration", "1000"),
            ("seed", "11"),
            ("out", &spans_path),
        ]))
        .unwrap();
        let report = run(&args(&[
            ("topo", &topo_path),
            ("spans", &spans_path),
            ("lambda", "0.5"),
            ("k", "4"),
            ("audit", "true"),
        ]))
        .unwrap();
        assert!(report.contains("engine invariants held"), "{report}");
    }

    #[test]
    fn replanned_policy_reports_a_zero_gap() {
        let (topo_path, wl) = fixture();
        let spans_path = tmp("stream-zero-gap-spans.json");
        generate(&args(&[
            ("workload", &wl),
            ("duration", "500"),
            ("seed", "3"),
            ("out", &spans_path),
        ]))
        .unwrap();
        let report = run(&args(&[
            ("topo", &topo_path),
            ("spans", &spans_path),
            ("lambda", "0.5"),
            ("k", "6"),
            ("policy", "replanned"),
            ("oracle-every", "1"),
        ]))
        .unwrap();
        assert!(
            report.contains("mean 0.00% / max 0.00%"),
            "forced replans track the oracle exactly: {report}"
        );
    }

    #[test]
    fn budgeted_run_reports_spend_and_deferrals() {
        let (topo_path, wl) = fixture();
        let spans_path = tmp("stream-budget-spans.json");
        generate(&args(&[
            ("workload", &wl),
            ("duration", "1000"),
            ("seed", "7"),
            ("out", &spans_path),
        ]))
        .unwrap();
        let report = run(&args(&[
            ("topo", &topo_path),
            ("spans", &spans_path),
            ("lambda", "0.5"),
            ("k", "4"),
            ("budget", "0.25"),
            ("burst", "1"),
            ("hysteresis", "0.1"),
        ]))
        .unwrap();
        assert!(report.contains("migrations:"), "{report}");
        assert!(report.contains("budget:"), "{report}");
        assert!(report.contains("tokens spent"), "{report}");
        // Without --budget the budget line disappears.
        let free = run(&args(&[
            ("topo", &topo_path),
            ("spans", &spans_path),
            ("lambda", "0.5"),
            ("k", "4"),
        ]))
        .unwrap();
        assert!(free.contains("migrations:"), "{free}");
        assert!(!free.contains("budget:"), "{free}");
    }

    #[test]
    fn bad_budget_flags_are_rejected() {
        let (topo_path, wl) = fixture();
        let spans_path = tmp("stream-badbudget-spans.json");
        generate(&args(&[
            ("workload", &wl),
            ("duration", "100"),
            ("out", &spans_path),
        ]))
        .unwrap();
        let err = run(&args(&[
            ("topo", &topo_path),
            ("spans", &spans_path),
            ("lambda", "0.5"),
            ("k", "4"),
            ("budget", "-1"),
        ]))
        .unwrap_err();
        assert!(err.contains("--budget"), "{err}");
    }

    #[test]
    fn inject_reports_failures_for_both_modes() {
        let (topo_path, wl) = fixture();
        let spans_path = tmp("stream-inject-spans.json");
        generate(&args(&[
            ("workload", &wl),
            ("duration", "10000"),
            ("seed", "7"),
            ("out", &spans_path),
        ]))
        .unwrap();
        for (mode, extra) in [
            ("independent", ("mtbf-us", "2000")),
            ("targeted", ("period-us", "1500")),
        ] {
            let report = inject(&args(&[
                ("topo", &topo_path),
                ("spans", &spans_path),
                ("lambda", "0.5"),
                ("k", "4"),
                ("mode", mode),
                extra,
                ("mttr-us", "500"),
                ("seed", "3"),
            ]))
            .unwrap();
            assert!(report.contains("failures:"), "{mode}: {report}");
            assert!(report.contains("repair latency:"), "{mode}: {report}");
            assert!(report.contains("0 failed vertices"), "{mode}: {report}");
        }
    }

    #[test]
    fn inject_rejects_unknown_mode() {
        let (topo_path, wl) = fixture();
        let spans_path = tmp("stream-inject-badmode-spans.json");
        generate(&args(&[
            ("workload", &wl),
            ("duration", "100"),
            ("out", &spans_path),
        ]))
        .unwrap();
        let err = inject(&args(&[
            ("topo", &topo_path),
            ("spans", &spans_path),
            ("lambda", "0.5"),
            ("k", "4"),
            ("mode", "cosmic-rays"),
        ]))
        .unwrap_err();
        assert!(err.contains("unknown mode"));
    }

    #[test]
    fn bad_policy_is_rejected() {
        let (topo_path, wl) = fixture();
        let spans_path = tmp("stream-badpolicy-spans.json");
        generate(&args(&[
            ("workload", &wl),
            ("duration", "100"),
            ("out", &spans_path),
        ]))
        .unwrap();
        let err = run(&args(&[
            ("topo", &topo_path),
            ("spans", &spans_path),
            ("lambda", "0.5"),
            ("k", "4"),
            ("policy", "psychic"),
        ]))
        .unwrap_err();
        assert!(err.contains("unknown policy"));
    }
}
