//! `tdmd place`.

use crate::args::Args;
use crate::commands::{load_topology, load_workload, write_out};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tdmd_core::algorithms::best_effort::best_effort_with;
use tdmd_core::algorithms::gtp::{gtp_budgeted_with, gtp_lazy_with, gtp_parallel_with};
use tdmd_core::algorithms::joint::joint_solve;
use tdmd_core::algorithms::local_search::gtp_with_local_search_with;
use tdmd_core::algorithms::Algorithm;
use tdmd_core::objective::{allocate, bandwidth_of, decrement, lemma1_bounds};
use tdmd_core::weighted::WeightedIndex;
use tdmd_core::{Instance, WeightedEdges};
use tdmd_traffic::candidate_sets;

/// Maps a CLI name to an [`Algorithm`].
pub fn algorithm_by_name(name: &str) -> Result<Algorithm, String> {
    Ok(match name {
        "random" => Algorithm::Random,
        "best-effort" | "besteffort" => Algorithm::BestEffort,
        "gtp" => Algorithm::Gtp,
        "gtp-lazy" => Algorithm::GtpLazy,
        "gtp-parallel" => Algorithm::GtpParallel,
        "gtp-ls" => Algorithm::GtpLs,
        "hat" => Algorithm::Hat,
        "dp" => Algorithm::Dp,
        "centrality" => Algorithm::Centrality,
        other => {
            return Err(format!(
                "unknown algorithm '{other}' (random|best-effort|gtp|gtp-lazy|\
                 gtp-parallel|gtp-ls|hat|dp|centrality)"
            ))
        }
    })
}

/// `tdmd place --topo t.json --workload wl.json --lambda L --k K
/// --algorithm NAME [--routing fixed|joint] [--k-paths N]
/// [--cost-model hops|weighted] [--seed S] [--audit true]
/// [--out plan.json]` (also reachable as `tdmd solve`)
pub fn place(args: &Args) -> Result<String, String> {
    let g = load_topology(args.required("topo")?)?;
    let flows = load_workload(args.required("workload")?)?;
    let lambda: f64 = args.num_required("lambda")?;
    let k: usize = args.num_required("k")?;
    let alg = algorithm_by_name(args.required("algorithm")?)?;
    let cost_model = args.optional("cost-model").unwrap_or("hops");
    let seed: u64 = args.num("seed", 0)?;
    let audit = args.flag("audit")?;
    let routing = args.optional("routing").unwrap_or("fixed");

    match routing {
        "fixed" => {}
        "joint" => return place_joint(args, g, flows, lambda, k, alg, cost_model, audit),
        other => return Err(format!("unknown routing mode '{other}' (fixed|joint)")),
    }

    let instance = Instance::new(g, flows, lambda, k).map_err(|e| e.to_string())?;
    if audit {
        tdmd_core::audit::check_instance(&instance).map_err(|e| format!("audit: {e}"))?;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let start = std::time::Instant::now();
    let plan = match cost_model {
        "hops" => alg.run(&instance, &mut rng).map_err(|e| e.to_string())?,
        "weighted" => {
            let model = WeightedEdges::new(&instance);
            match alg {
                Algorithm::Gtp => gtp_budgeted_with(&instance, k, &model),
                Algorithm::GtpLazy => gtp_lazy_with(&instance, k, &model),
                Algorithm::GtpParallel => gtp_parallel_with(&instance, k, &model),
                Algorithm::GtpLs => gtp_with_local_search_with(&instance, k, &model),
                Algorithm::BestEffort => best_effort_with(&instance, k, &model),
                other => {
                    return Err(format!(
                        "--cost-model weighted supports gtp|gtp-lazy|gtp-parallel|\
                         gtp-ls|best-effort, not '{}'",
                        other.name()
                    ))
                }
            }
            .map_err(|e| e.to_string())?
        }
        other => return Err(format!("unknown cost model '{other}' (hops|weighted)")),
    };
    let elapsed = start.elapsed().as_secs_f64() * 1e3;

    if audit {
        let alloc = allocate(&instance, &plan);
        tdmd_core::audit::check_solution(&instance, &plan, k, Some(&alloc))
            .map_err(|e| format!("audit: {e}"))?;
    }
    let b = bandwidth_of(&instance, &plan);
    let d = decrement(&instance, &plan);
    let (_, dmax) = lemma1_bounds(&instance);
    let mut out = format!(
        "algorithm:    {}\nmiddleboxes:  {} / {k}\nvertices:     {:?}\n\
         bandwidth:    {b:.2} (unprocessed {:.2})\ndecrement:    {d:.2} \
         ({:.1}% of the Lemma-1 max)\ntime:         {elapsed:.3} ms\n",
        alg.name(),
        plan.len(),
        plan.vertices(),
        instance.unprocessed_bandwidth(),
        if dmax > 0.0 { 100.0 * d / dmax } else { 100.0 },
    );
    if audit {
        out.push_str("audit:        instance + solution invariants hold\n");
    }
    if cost_model == "weighted" {
        let wi = WeightedIndex::new(&instance);
        out.push_str(&format!(
            "weighted bw:  {:.2} (unprocessed {:.2})\n",
            wi.bandwidth_of(&instance, &plan),
            wi.unprocessed(&instance),
        ));
    }
    if let Some(path) = args.optional("out") {
        let json = serde_json::to_string_pretty(&plan).map_err(|e| e.to_string())?;
        write_out(path, &json)?;
        out.push_str(&format!("plan written to {path}\n"));
    }
    Ok(out)
}

/// The `--routing joint` arm: Yen candidate sets feed the alternating
/// joint routing + placement solver, which reports the fixed-path
/// baseline and its LP-relaxation optimality certificate next to the
/// solved objective.
#[allow(clippy::too_many_arguments)]
fn place_joint(
    args: &Args,
    g: tdmd_graph::DiGraph,
    flows: Vec<tdmd_traffic::Flow>,
    lambda: f64,
    k: usize,
    alg: Algorithm,
    cost_model: &str,
    audit: bool,
) -> Result<String, String> {
    if !matches!(alg, Algorithm::Gtp) {
        return Err(format!(
            "--routing joint runs the alternating GTP solver; pass --algorithm gtp, not '{}'",
            alg.name()
        ));
    }
    if cost_model != "hops" {
        return Err(format!(
            "--routing joint prices hop counts only, not '{cost_model}'"
        ));
    }
    let k_paths: usize = args.num("k-paths", 3)?;
    if k_paths == 0 {
        return Err("--k-paths must be at least 1".to_string());
    }
    let sets = candidate_sets(&flows, &g, k_paths);
    let instance = Instance::with_path_sets(g, sets, lambda, k).map_err(|e| e.to_string())?;
    if audit {
        tdmd_core::audit::check_instance(&instance).map_err(|e| format!("audit: {e}"))?;
    }
    let start = std::time::Instant::now();
    let sol = joint_solve(&instance).map_err(|e| e.to_string())?;
    let elapsed = start.elapsed().as_secs_f64() * 1e3;

    // Re-apply the solution routing so the report (and the audit) see
    // the instance the objective was priced on.
    let mut routed = instance;
    let switches: Vec<(u32, u32)> = sol
        .active
        .iter()
        .enumerate()
        .map(|(f, &j)| (f as u32, j))
        .collect();
    routed.set_active_paths(&switches);
    if audit {
        tdmd_core::audit::check_instance(&routed).map_err(|e| format!("audit: {e}"))?;
        let alloc = allocate(&routed, &sol.deployment);
        tdmd_core::audit::check_solution(&routed, &sol.deployment, k, Some(&alloc))
            .map_err(|e| format!("audit: {e}"))?;
    }
    let gap = if sol.lp_bound > 0.0 {
        100.0 * (sol.objective - sol.lp_bound) / sol.lp_bound
    } else {
        f64::NAN
    };
    let mut out = format!(
        "algorithm:    GTP + joint routing ({k_paths} candidate paths)\n\
         middleboxes:  {} / {k}\nvertices:     {:?}\n\
         bandwidth:    {:.2} (unprocessed {:.2})\n\
         fixed-path:   {:.2} (joint saves {:.2})\n\
         lp bound:     {:.2} (objective within {:.1}% of optimal)\n\
         rounds:       {} ({} path switches)\ntime:         {elapsed:.3} ms\n",
        sol.deployment.len(),
        sol.deployment.vertices(),
        sol.objective,
        routed.unprocessed_bandwidth(),
        sol.fixed_objective,
        sol.fixed_objective - sol.objective,
        sol.lp_bound,
        gap,
        sol.rounds,
        sol.path_switches,
    );
    if audit {
        out.push_str("audit:        instance + solution invariants hold\n");
    }
    if let Some(path) = args.optional("out") {
        let json = serde_json::to_string_pretty(&sol.deployment).map_err(|e| e.to_string())?;
        write_out(path, &json)?;
        out.push_str(&format!("plan written to {path}\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::{topo, workload};

    fn args(pairs: &[(&str, &str)]) -> Args {
        let flat: Vec<String> = pairs
            .iter()
            .flat_map(|(k, v)| [format!("--{k}"), v.to_string()])
            .collect();
        Args::parse(&flat).unwrap()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir()
            .join(format!("tdmd-cli-test-{name}"))
            .display()
            .to_string()
    }

    fn fixture() -> (String, String) {
        let topo_path = tmp("place-topo.json");
        topo::generate(&args(&[
            ("kind", "tree"),
            ("size", "14"),
            ("out", &topo_path),
        ]))
        .unwrap();
        let wl_path = tmp("place-wl.json");
        workload::generate(&args(&[
            ("topo", &topo_path),
            ("count", "10"),
            ("out", &wl_path),
        ]))
        .unwrap();
        (topo_path, wl_path)
    }

    #[test]
    fn algorithm_names_resolve() {
        for name in [
            "random",
            "best-effort",
            "gtp",
            "gtp-lazy",
            "gtp-parallel",
            "gtp-ls",
            "hat",
            "dp",
            "centrality",
        ] {
            algorithm_by_name(name).unwrap();
        }
        assert!(algorithm_by_name("magic").is_err());
    }

    #[test]
    fn place_runs_end_to_end_and_writes_the_plan() {
        let (topo_path, wl_path) = fixture();
        let plan_path = tmp("place-plan.json");
        let report = place(&args(&[
            ("topo", &topo_path),
            ("workload", &wl_path),
            ("lambda", "0.5"),
            ("k", "4"),
            ("algorithm", "dp"),
            ("out", &plan_path),
        ]))
        .unwrap();
        assert!(report.contains("algorithm:    DP"));
        assert!(report.contains("bandwidth:"));
        let plan: tdmd_core::Deployment =
            serde_json::from_str(&std::fs::read_to_string(&plan_path).unwrap()).unwrap();
        assert!(plan.len() <= 4);
    }

    #[test]
    fn audit_flag_validates_instance_and_solution() {
        let (topo_path, wl_path) = fixture();
        let report = place(&args(&[
            ("topo", &topo_path),
            ("workload", &wl_path),
            ("lambda", "0.5"),
            ("k", "4"),
            ("algorithm", "gtp"),
            ("audit", "true"),
        ]))
        .unwrap();
        assert!(report.contains("audit:        instance + solution invariants hold"));
    }

    #[test]
    fn weighted_cost_model_runs_the_generic_engine() {
        let (topo_path, wl_path) = fixture();
        for alg in ["gtp", "gtp-lazy", "gtp-parallel", "gtp-ls", "best-effort"] {
            let report = place(&args(&[
                ("topo", &topo_path),
                ("workload", &wl_path),
                ("lambda", "0.5"),
                ("k", "4"),
                ("algorithm", alg),
                ("cost-model", "weighted"),
            ]))
            .unwrap();
            assert!(report.contains("weighted bw:"), "{alg}");
        }
    }

    #[test]
    fn weighted_cost_model_rejects_unsupported_algorithms() {
        let (topo_path, wl_path) = fixture();
        let err = place(&args(&[
            ("topo", &topo_path),
            ("workload", &wl_path),
            ("lambda", "0.5"),
            ("k", "4"),
            ("algorithm", "dp"),
            ("cost-model", "weighted"),
        ]))
        .unwrap_err();
        assert!(err.contains("weighted"));
        let err = place(&args(&[
            ("topo", &topo_path),
            ("workload", &wl_path),
            ("lambda", "0.5"),
            ("k", "4"),
            ("algorithm", "gtp"),
            ("cost-model", "euclidean"),
        ]))
        .unwrap_err();
        assert!(err.contains("unknown cost model"));
    }

    #[test]
    fn joint_routing_reports_bound_and_baseline() {
        let (topo_path, wl_path) = fixture();
        let report = place(&args(&[
            ("topo", &topo_path),
            ("workload", &wl_path),
            ("lambda", "0.5"),
            ("k", "4"),
            ("algorithm", "gtp"),
            ("routing", "joint"),
            ("k-paths", "3"),
            ("audit", "true"),
        ]))
        .unwrap();
        assert!(report.contains("joint routing (3 candidate paths)"));
        assert!(report.contains("fixed-path:"));
        assert!(report.contains("lp bound:"));
        assert!(report.contains("audit:        instance + solution invariants hold"));
    }

    #[test]
    fn joint_routing_never_beats_itself_with_one_candidate() {
        // --k-paths 1 is the singleton case: the joint report must
        // show a zero saving over the fixed-path baseline.
        let (topo_path, wl_path) = fixture();
        let report = place(&args(&[
            ("topo", &topo_path),
            ("workload", &wl_path),
            ("lambda", "0.5"),
            ("k", "4"),
            ("algorithm", "gtp"),
            ("routing", "joint"),
            ("k-paths", "1"),
        ]))
        .unwrap();
        assert!(report.contains("joint saves 0.00"));
    }

    #[test]
    fn joint_routing_rejects_bad_modes() {
        let (topo_path, wl_path) = fixture();
        let base = [
            ("topo", topo_path.as_str()),
            ("workload", wl_path.as_str()),
            ("lambda", "0.5"),
            ("k", "4"),
        ];
        let mut with_alg = base.to_vec();
        with_alg.extend([("algorithm", "dp"), ("routing", "joint")]);
        assert!(place(&args(&with_alg)).unwrap_err().contains("gtp"));
        let mut with_cost = base.to_vec();
        with_cost.extend([
            ("algorithm", "gtp"),
            ("routing", "joint"),
            ("cost-model", "weighted"),
        ]);
        assert!(place(&args(&with_cost))
            .unwrap_err()
            .contains("hop counts only"));
        let mut with_mode = base.to_vec();
        with_mode.extend([("algorithm", "gtp"), ("routing", "split")]);
        assert!(place(&args(&with_mode))
            .unwrap_err()
            .contains("unknown routing mode"));
    }

    #[test]
    fn infeasible_budget_is_a_clean_error() {
        let (topo_path, wl_path) = fixture();
        let err = place(&args(&[
            ("topo", &topo_path),
            ("workload", &wl_path),
            ("lambda", "0.5"),
            ("k", "0"),
            ("algorithm", "dp"),
        ]))
        .unwrap_err();
        assert!(err.contains("feasible") || err.contains("0"));
    }
}
