//! # tdmd-chain — service chains of traffic-changing middleboxes
//!
//! The paper restricts itself to a *single* middlebox type; the
//! literature it builds on places totally-ordered *chains* (Ma et al.
//! \[22\], Chen & Wu \[7\]): every flow must traverse types
//! `t₁ → t₂ → … → t_m` in order, each type multiplying the flow's rate
//! by its own ratio `λ_t` — which may shrink (*filters, optimizers*,
//! `λ < 1`) or **grow** traffic (*decryption, decompression*,
//! `λ > 1`). Ordering then matters: shrinkers want to sit early,
//! expanders late, and instances are shared across flows (the paper's
//! critique of \[22\] is precisely that it never shares).
//!
//! * [`spec`] — chain specifications and per-type ratios.
//! * [`deployment`] — per-type instance sets.
//! * [`eval`] — exact per-flow processing via an ordered DP over the
//!   flow's path, and the total-bandwidth objective.
//! * [`greedy`] — shared-instance greedy placement
//!   ([`greedy::chain_gtp`], driven by `tdmd-core`'s generic move
//!   engine), the egress baseline
//!   ([`greedy::chain_at_destinations`]), and the chain-aware cost
//!   model ([`greedy::ChainStackModel`]) that lets the core GTP
//!   engine place the chain's diminishing prefix directly
//!   ([`greedy::chain_stacked_gtp`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deployment;
pub mod eval;
pub mod greedy;
pub mod spec;

pub use deployment::ChainDeployment;
pub use eval::{evaluate_chain, flow_chain_cost, ChainEval};
pub use greedy::{chain_at_destinations, chain_gtp, chain_stacked_gtp, ChainStackModel};
pub use spec::{ChainSpec, MiddleboxType};
