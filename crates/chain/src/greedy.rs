//! Chain placement algorithms.
//!
//! * [`chain_at_destinations`] — the egress baseline: the full chain
//!   stacked on every destination vertex. Always feasible (every type
//!   is reachable last, in order), never saves a byte of the
//!   diminishing types' potential, and anchors the greedy.
//! * [`chain_gtp`] — shared-instance greedy in the spirit of the
//!   paper's GTP: start from the egress baseline, then repeatedly add
//!   the `(type, vertex)` instance whose *exact* re-evaluation lowers
//!   the total bandwidth most, until the instance budget is spent or
//!   no instance helps. Sharing across flows is automatic: the
//!   per-flow DP re-homes every flow on each candidate evaluation.
//!   Since the `CostModel` refactor the loop itself lives in
//!   `tdmd-core`'s generic engine ([`run_move_greedy`]); this module
//!   only supplies the [`MoveGreedy`] driver (the private
//!   `PrefixStackMoves`).
//! * [`chain_stacked_gtp`] — the chain-aware [`CostModel`] adapter
//!   ([`ChainStackModel`]): collapse the chain's best diminishing
//!   prefix into a single stacked placement problem and run the core
//!   GTP engine on it directly.

use crate::deployment::ChainDeployment;
use crate::eval::{evaluate_chain, ChainEval};
use crate::spec::ChainSpec;
use tdmd_core::algorithms::engine::{run_move_greedy, MoveGreedy};
use tdmd_core::algorithms::gtp::gtp_budgeted_with;
use tdmd_core::cost::CostModel;
use tdmd_core::error::TdmdError;
use tdmd_core::instance::Instance;
use tdmd_graph::{DiGraph, NodeId};
use tdmd_traffic::Flow;

/// The egress baseline: every type of the chain on every destination.
/// Uses `m · |destinations|` instances.
pub fn chain_at_destinations(
    graph: &DiGraph,
    flows: &[Flow],
    chain: &ChainSpec,
) -> ChainDeployment {
    let mut dests: Vec<NodeId> = flows.iter().map(Flow::dst).collect();
    dests.sort_unstable();
    dests.dedup();
    let mut dep = ChainDeployment::empty(chain.len(), graph.node_count());
    for &d in &dests {
        for t in 0..chain.len() {
            dep.insert(t, d);
        }
    }
    dep
}

/// [`MoveGreedy`] driver for the shared-instance chain greedy.
///
/// Moves are *prefix stacks*: placing types `0..=t` on a vertex in
/// one step (only the missing ones are added). A lone mid-chain
/// instance is often worthless — e.g. an optimizer with no upstream
/// firewall can never be used in order — so single-instance moves
/// alone stall; stacking the prefix captures the coordinated gain.
/// Moves are scored by bandwidth saved per instance spent.
struct PrefixStackMoves<'a> {
    flows: &'a [Flow],
    chain: &'a ChainSpec,
    cands: Vec<NodeId>,
    dep: ChainDeployment,
    cur: ChainEval,
}

impl PrefixStackMoves<'_> {
    /// Types of the prefix `0..=t` not yet present on `v`.
    fn missing(&self, t: usize, v: NodeId) -> Vec<usize> {
        (0..=t).filter(|&ti| !self.dep.has(ti, v)).collect()
    }
}

impl MoveGreedy for PrefixStackMoves<'_> {
    type Move = (usize, NodeId);
    /// `(density, saved, cost, t, v)` — compared with epsilon ladders.
    type Key = (f64, f64, usize, usize, NodeId);

    fn spent(&self) -> usize {
        self.dep.total_instances()
    }

    fn moves(&self, slack: usize) -> Vec<(usize, NodeId)> {
        let mut out = Vec::new();
        for t in 0..self.chain.len() {
            for &v in &self.cands {
                let cost = self.missing(t, v).len();
                if cost > 0 && cost <= slack {
                    out.push((t, v));
                }
            }
        }
        out
    }

    fn evaluate(&mut self, &(t, v): &(usize, NodeId)) -> Option<Self::Key> {
        let missing = self.missing(t, v);
        for &ti in &missing {
            self.dep.insert(ti, v);
        }
        let eval = evaluate_chain(self.flows, self.chain, &self.dep);
        for &ti in &missing {
            self.dep.remove(ti, v);
        }
        let saved = self.cur.bandwidth - eval.bandwidth;
        if saved <= 1e-12 {
            return None;
        }
        Some((saved / missing.len() as f64, saved, missing.len(), t, v))
    }

    fn better(&self, a: &Self::Key, b: &Self::Key) -> bool {
        let (ad, a_saved, ac, at, av) = *a;
        let (bd, b_saved, bc, bt, bv) = *b;
        ad > bd + 1e-12
            || ((ad - bd).abs() <= 1e-12
                && (a_saved > b_saved + 1e-12
                    || ((a_saved - b_saved).abs() <= 1e-12 && (ac, at, av) < (bc, bt, bv))))
    }

    fn apply(&mut self, &(t, v): &(usize, NodeId)) {
        for ti in 0..=t {
            self.dep.insert(ti, v);
        }
        self.cur = evaluate_chain(self.flows, self.chain, &self.dep);
    }
}

/// Shared-instance greedy chain placement with a total instance
/// budget, dispatched through the core engine's
/// [`run_move_greedy`] loop.
///
/// # Errors
/// [`TdmdError::Infeasible`] when the egress baseline alone exceeds
/// the budget (no cheaper universally-feasible start exists without
/// solving the NP-hard coverage problem).
pub fn chain_gtp(
    graph: &DiGraph,
    flows: &[Flow],
    chain: &ChainSpec,
    budget: usize,
) -> Result<(ChainDeployment, ChainEval), TdmdError> {
    let dep = chain_at_destinations(graph, flows, chain);
    if dep.total_instances() > budget {
        return Err(TdmdError::Infeasible { budget });
    }
    let cur = evaluate_chain(flows, chain, &dep);
    debug_assert!(cur.feasible(), "egress baseline must be feasible");
    // Candidate vertices: any vertex on some flow path.
    let mut on_path = vec![false; graph.node_count()];
    for f in flows {
        for &v in &f.path {
            on_path[v as usize] = true;
        }
    }
    let cands: Vec<NodeId> = (0..graph.node_count() as NodeId)
        .filter(|&v| on_path[v as usize])
        .collect();
    let mut driver = PrefixStackMoves {
        flows,
        chain,
        cands,
        dep,
        cur,
    };
    run_move_greedy(&mut driver, budget);
    Ok((driver.dep, driver.cur))
}

/// Chain-aware [`CostModel`]: prices a vertex by the downstream hops
/// its whole *best diminishing prefix* would save when stacked there.
///
/// The best prefix is the one minimizing the cumulative ratio
/// `Π λ_t` (ties toward the shorter prefix); stacking it at a vertex
/// `l` hops upstream of the destination saves
/// `r_f · (1 − Π λ) · l` — so the serving gain is `(1 − Π λ) · l`,
/// non-increasing along the path, and Thm. 2's submodularity (hence
/// GTP's `(1 − 1/e)` bound for the stacked relaxation) carries over.
///
/// Consume it with an instance whose `λ = 0`: the model already folds
/// the chain's diminishing fraction into its gains, so the engine's
/// `(1 − λ)` factor must stay 1.
#[derive(Debug, Clone, Copy)]
pub struct ChainStackModel {
    prefix_len: usize,
    saving: f64,
}

impl ChainStackModel {
    /// Chooses the cumulative-ratio-minimizing prefix of `chain`.
    pub fn new(chain: &ChainSpec) -> Self {
        let mut best_ratio = 1.0f64;
        let mut prefix_len = 0usize;
        for i in 0..=chain.len() {
            let r = chain.prefix_ratio(i);
            if r < best_ratio - 1e-12 {
                best_ratio = r;
                prefix_len = i;
            }
        }
        Self {
            prefix_len,
            saving: 1.0 - best_ratio,
        }
    }

    /// Number of leading chain types in the stacked prefix.
    pub fn prefix_len(&self) -> usize {
        self.prefix_len
    }

    /// Fraction of traffic the stacked prefix removes (`1 − Π λ`).
    pub fn saving(&self) -> f64 {
        self.saving
    }
}

impl CostModel for ChainStackModel {
    fn serving_gain(&self, flow: &Flow, pos: usize) -> f64 {
        self.saving * (flow.hops() - pos) as f64
    }

    fn unprocessed_cost(&self, flow: &Flow) -> f64 {
        flow.hops() as f64
    }
}

/// Stacked-prefix chain placement through the core GTP engine.
///
/// Relaxes the per-instance chain problem to the paper's shape: the
/// chain's best diminishing prefix is treated as one stackable unit
/// placed on at most `k` vertices (chosen by the generic engine under
/// [`ChainStackModel`] pricing), while the remaining types — expanders
/// and neutral tails, which never profit from moving upstream — sit at
/// every destination, like the egress baseline. The returned
/// deployment therefore uses `k · prefix_len` stack instances plus
/// `|destinations| · (m − prefix_len)` egress instances, and is always
/// order-feasible (prefix strictly upstream of its suffix).
///
/// # Errors
/// [`TdmdError::Infeasible`] when `k` stack vertices cannot cover
/// every flow (same guard as the core GTP), or the instance is
/// malformed.
pub fn chain_stacked_gtp(
    graph: &DiGraph,
    flows: &[Flow],
    chain: &ChainSpec,
    k: usize,
) -> Result<(ChainDeployment, ChainEval), TdmdError> {
    let model = ChainStackModel::new(chain);
    let mut dep = ChainDeployment::empty(chain.len(), graph.node_count());
    let mut dests: Vec<NodeId> = flows.iter().map(Flow::dst).collect();
    dests.sort_unstable();
    dests.dedup();
    if model.prefix_len() == 0 {
        // No diminishing prefix (the chain opens with expanders):
        // stacking never helps, fall back to the egress baseline.
        for &d in &dests {
            for t in 0..chain.len() {
                dep.insert(t, d);
            }
        }
        let eval = evaluate_chain(flows, chain, &dep);
        return Ok((dep, eval));
    }
    // λ = 0: ChainStackModel folds the saving fraction into its gains.
    let inst = Instance::new(graph.clone(), flows.to_vec(), 0.0, k)?;
    let plan = gtp_budgeted_with(&inst, k, &model)?;
    for &v in plan.vertices() {
        for t in 0..model.prefix_len() {
            dep.insert(t, v);
        }
    }
    for &d in &dests {
        for t in model.prefix_len()..chain.len() {
            dep.insert(t, d);
        }
    }
    let eval = evaluate_chain(flows, chain, &dep);
    Ok((dep, eval))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdmd_graph::GraphBuilder;

    /// Fig. 5-shaped tree (0-based), all flows to the root.
    fn tree_fixture() -> (DiGraph, Vec<Flow>) {
        let mut b = GraphBuilder::new(8);
        for (u, v) in [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (5, 6), (5, 7)] {
            b.add_bidirectional(u, v);
        }
        let flows = vec![
            Flow::new(0, 2, vec![3, 1, 0]),
            Flow::new(1, 1, vec![7, 5, 2, 0]),
            Flow::new(2, 5, vec![6, 5, 2, 0]),
            Flow::new(3, 1, vec![4, 1, 0]),
        ];
        (b.build(), flows)
    }

    #[test]
    fn egress_baseline_is_feasible_and_saves_nothing() {
        let (g, flows) = tree_fixture();
        let chain = ChainSpec::from_ratios(&[("fw", 0.5), ("opt", 0.5)]);
        let dep = chain_at_destinations(&g, &flows, &chain);
        assert_eq!(dep.total_instances(), 2, "one destination, two types");
        let eval = evaluate_chain(&flows, &chain, &dep);
        assert!(eval.feasible());
        let unprocessed: f64 = flows.iter().map(|f| f.unprocessed_bandwidth() as f64).sum();
        assert_eq!(
            eval.bandwidth, unprocessed,
            "processing at the egress saves nothing"
        );
    }

    #[test]
    fn single_type_chain_matches_the_core_dp() {
        // A 1-type chain is exactly the paper's problem; with enough
        // budget the greedy should land on the all-sources optimum.
        let (g, flows) = tree_fixture();
        let chain = ChainSpec::from_ratios(&[("m", 0.5)]);
        let (dep, eval) = chain_gtp(&g, &flows, &chain, 5).unwrap();
        // Core DP optimum at k = 5 is 12 (all sources; the spare root
        // instance from the baseline costs nothing).
        assert_eq!(eval.bandwidth, 12.0);
        for src in [3u32, 4, 6, 7] {
            assert!(dep.has(0, src), "source {src} should host the filter");
        }
    }

    #[test]
    fn budget_below_baseline_is_infeasible() {
        let (g, flows) = tree_fixture();
        let chain = ChainSpec::from_ratios(&[("a", 0.5), ("b", 0.5), ("c", 0.5)]);
        assert!(chain_gtp(&g, &flows, &chain, 2).is_err());
    }

    #[test]
    fn greedy_improves_monotonically_with_budget() {
        let (g, flows) = tree_fixture();
        let chain = ChainSpec::from_ratios(&[("fw", 0.5), ("opt", 0.8)]);
        let mut prev = f64::INFINITY;
        for budget in 2..=8 {
            let (dep, eval) = chain_gtp(&g, &flows, &chain, budget).unwrap();
            assert!(eval.feasible());
            assert!(dep.total_instances() <= budget);
            assert!(eval.bandwidth <= prev + 1e-9, "budget {budget}");
            prev = eval.bandwidth;
        }
    }

    #[test]
    fn expander_types_stay_at_the_egress() {
        // decrypt doubles the traffic: the greedy must never pull it
        // toward the sources even with spare budget.
        let (g, flows) = tree_fixture();
        let chain = ChainSpec::from_ratios(&[("opt", 0.5), ("decrypt", 2.0)]);
        let (_dep, eval) = chain_gtp(&g, &flows, &chain, 8).unwrap();
        assert!(eval.feasible());
        // The decrypt instances in use should effectively sit at the
        // root: placing it anywhere earlier on a path would inflate
        // every downstream edge. The optimizer spreads to sources.
        let b_only_root_decrypt = {
            let mut d = ChainDeployment::empty(2, 8);
            for src in [3u32, 4, 6, 7] {
                d.insert(0, src);
            }
            d.insert(1, 0);
            d.insert(0, 0);
            evaluate_chain(&flows, &chain, &d).bandwidth
        };
        assert!(eval.bandwidth <= b_only_root_decrypt + 1e-9);
    }

    #[test]
    fn stack_model_picks_the_diminishing_prefix() {
        let chain = ChainSpec::from_ratios(&[("opt", 0.5), ("decrypt", 2.0), ("zip", 0.25)]);
        let m = ChainStackModel::new(&chain);
        // Ratios: 1, 0.5, 1.0, 0.25 → the full chain wins.
        assert_eq!(m.prefix_len(), 3);
        assert_eq!(m.saving(), 0.75);
        let chain = ChainSpec::from_ratios(&[("opt", 0.5), ("decrypt", 2.0)]);
        let m = ChainStackModel::new(&chain);
        assert_eq!(m.prefix_len(), 1, "the expander is left at the egress");
        assert_eq!(m.saving(), 0.5);
    }

    #[test]
    fn stacked_gtp_single_type_matches_core_gtp() {
        // A 1-type chain with ratio λ is exactly the paper's problem:
        // the stacked relaxation must reproduce core GTP bit for bit.
        use tdmd_core::algorithms::gtp::gtp_budgeted;
        use tdmd_core::objective::bandwidth_of;
        let (g, flows) = tree_fixture();
        let chain = ChainSpec::from_ratios(&[("m", 0.5)]);
        for k in 1..=5 {
            let (dep, eval) = chain_stacked_gtp(&g, &flows, &chain, k).unwrap();
            let inst = Instance::new(g.clone(), flows.clone(), 0.5, k).unwrap();
            let plan = gtp_budgeted(&inst, k).unwrap();
            assert_eq!(eval.bandwidth, bandwidth_of(&inst, &plan), "k={k}");
            for &v in plan.vertices() {
                assert!(dep.has(0, v), "k={k}: stack must sit on the GTP plan");
            }
        }
    }

    #[test]
    fn stacked_gtp_keeps_expanders_at_destinations() {
        let (g, flows) = tree_fixture();
        let chain = ChainSpec::from_ratios(&[("opt", 0.5), ("decrypt", 2.0)]);
        let (dep, eval) = chain_stacked_gtp(&g, &flows, &chain, 4).unwrap();
        assert!(eval.feasible());
        assert_eq!(dep.instances(1), &[0], "decrypt only at the root egress");
        // Optimizer at all four sources saves 0.5 of every edge:
        // total unprocessed is 24, so 12 remains.
        assert_eq!(eval.bandwidth, 12.0);
    }

    #[test]
    fn stacked_gtp_expander_only_chain_degenerates_to_egress() {
        let (g, flows) = tree_fixture();
        let chain = ChainSpec::from_ratios(&[("decrypt", 2.0)]);
        let (dep, eval) = chain_stacked_gtp(&g, &flows, &chain, 3).unwrap();
        assert!(eval.feasible());
        assert_eq!(dep.total_instances(), 1, "egress baseline only");
    }

    #[test]
    fn stacked_gtp_is_infeasible_when_k_cannot_cover() {
        let (g, flows) = tree_fixture();
        let chain = ChainSpec::from_ratios(&[("m", 0.5)]);
        // k = 0 cannot cover any flow with a stacked prefix.
        assert!(chain_stacked_gtp(&g, &flows, &chain, 0).is_err());
    }
}
