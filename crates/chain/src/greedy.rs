//! Chain placement algorithms.
//!
//! * [`chain_at_destinations`] — the egress baseline: the full chain
//!   stacked on every destination vertex. Always feasible (every type
//!   is reachable last, in order), never saves a byte of the
//!   diminishing types' potential, and anchors the greedy.
//! * [`chain_gtp`] — shared-instance greedy in the spirit of the
//!   paper's GTP: start from the egress baseline, then repeatedly add
//!   the `(type, vertex)` instance whose *exact* re-evaluation lowers
//!   the total bandwidth most, until the instance budget is spent or
//!   no instance helps. Sharing across flows is automatic: the
//!   per-flow DP re-homes every flow on each candidate evaluation.

use crate::deployment::ChainDeployment;
use crate::eval::{evaluate_chain, ChainEval};
use crate::spec::ChainSpec;
use tdmd_core::error::TdmdError;
use tdmd_graph::{DiGraph, NodeId};
use tdmd_traffic::Flow;

/// The egress baseline: every type of the chain on every destination.
/// Uses `m · |destinations|` instances.
pub fn chain_at_destinations(
    graph: &DiGraph,
    flows: &[Flow],
    chain: &ChainSpec,
) -> ChainDeployment {
    let mut dests: Vec<NodeId> = flows.iter().map(Flow::dst).collect();
    dests.sort_unstable();
    dests.dedup();
    let mut dep = ChainDeployment::empty(chain.len(), graph.node_count());
    for &d in &dests {
        for t in 0..chain.len() {
            dep.insert(t, d);
        }
    }
    dep
}

/// Shared-instance greedy chain placement with a total instance
/// budget.
///
/// # Errors
/// [`TdmdError::Infeasible`] when the egress baseline alone exceeds
/// the budget (no cheaper universally-feasible start exists without
/// solving the NP-hard coverage problem).
pub fn chain_gtp(
    graph: &DiGraph,
    flows: &[Flow],
    chain: &ChainSpec,
    budget: usize,
) -> Result<(ChainDeployment, ChainEval), TdmdError> {
    let mut dep = chain_at_destinations(graph, flows, chain);
    if dep.total_instances() > budget {
        return Err(TdmdError::Infeasible { budget });
    }
    let mut cur = evaluate_chain(flows, chain, &dep);
    debug_assert!(cur.feasible(), "egress baseline must be feasible");
    // Candidate vertices: any vertex on some flow path.
    let mut on_path = vec![false; graph.node_count()];
    for f in flows {
        for &v in &f.path {
            on_path[v as usize] = true;
        }
    }
    let cands: Vec<NodeId> = (0..graph.node_count() as NodeId)
        .filter(|&v| on_path[v as usize])
        .collect();

    // Moves are *prefix stacks*: placing types `0..=t` on a vertex in
    // one step (only the missing ones are added). A lone mid-chain
    // instance is often worthless — e.g. an optimizer with no upstream
    // firewall can never be used in order — so single-instance moves
    // alone stall; stacking the prefix captures the coordinated gain.
    // Moves are scored by bandwidth saved per instance spent.
    while dep.total_instances() < budget {
        let slack = budget - dep.total_instances();
        // (density, saved, cost, t, v)
        let mut best: Option<(f64, f64, usize, usize, NodeId)> = None;
        for t in 0..chain.len() {
            for &v in &cands {
                let missing: Vec<usize> = (0..=t).filter(|&ti| !dep.has(ti, v)).collect();
                if missing.is_empty() || missing.len() > slack {
                    continue;
                }
                for &ti in &missing {
                    dep.insert(ti, v);
                }
                let eval = evaluate_chain(flows, chain, &dep);
                for &ti in &missing {
                    dep.remove(ti, v);
                }
                let saved = cur.bandwidth - eval.bandwidth;
                if saved <= 1e-12 {
                    continue;
                }
                let density = saved / missing.len() as f64;
                let better = match best {
                    None => true,
                    Some((bd, bs, bc, bt, bv)) => {
                        density > bd + 1e-12
                            || ((density - bd).abs() <= 1e-12
                                && (saved > bs + 1e-12
                                    || ((saved - bs).abs() <= 1e-12
                                        && (missing.len(), t, v) < (bc, bt, bv))))
                    }
                };
                if better {
                    best = Some((density, saved, missing.len(), t, v));
                }
            }
        }
        let Some((_, _, _, t, v)) = best else { break };
        for ti in 0..=t {
            dep.insert(ti, v);
        }
        cur = evaluate_chain(flows, chain, &dep);
    }
    Ok((dep, cur))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdmd_graph::GraphBuilder;

    /// Fig. 5-shaped tree (0-based), all flows to the root.
    fn tree_fixture() -> (DiGraph, Vec<Flow>) {
        let mut b = GraphBuilder::new(8);
        for (u, v) in [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (5, 6), (5, 7)] {
            b.add_bidirectional(u, v);
        }
        let flows = vec![
            Flow::new(0, 2, vec![3, 1, 0]),
            Flow::new(1, 1, vec![7, 5, 2, 0]),
            Flow::new(2, 5, vec![6, 5, 2, 0]),
            Flow::new(3, 1, vec![4, 1, 0]),
        ];
        (b.build(), flows)
    }

    #[test]
    fn egress_baseline_is_feasible_and_saves_nothing() {
        let (g, flows) = tree_fixture();
        let chain = ChainSpec::from_ratios(&[("fw", 0.5), ("opt", 0.5)]);
        let dep = chain_at_destinations(&g, &flows, &chain);
        assert_eq!(dep.total_instances(), 2, "one destination, two types");
        let eval = evaluate_chain(&flows, &chain, &dep);
        assert!(eval.feasible());
        let unprocessed: f64 = flows.iter().map(|f| f.unprocessed_bandwidth() as f64).sum();
        assert_eq!(
            eval.bandwidth, unprocessed,
            "processing at the egress saves nothing"
        );
    }

    #[test]
    fn single_type_chain_matches_the_core_dp() {
        // A 1-type chain is exactly the paper's problem; with enough
        // budget the greedy should land on the all-sources optimum.
        let (g, flows) = tree_fixture();
        let chain = ChainSpec::from_ratios(&[("m", 0.5)]);
        let (dep, eval) = chain_gtp(&g, &flows, &chain, 5).unwrap();
        // Core DP optimum at k = 5 is 12 (all sources; the spare root
        // instance from the baseline costs nothing).
        assert_eq!(eval.bandwidth, 12.0);
        for src in [3u32, 4, 6, 7] {
            assert!(dep.has(0, src), "source {src} should host the filter");
        }
    }

    #[test]
    fn budget_below_baseline_is_infeasible() {
        let (g, flows) = tree_fixture();
        let chain = ChainSpec::from_ratios(&[("a", 0.5), ("b", 0.5), ("c", 0.5)]);
        assert!(chain_gtp(&g, &flows, &chain, 2).is_err());
    }

    #[test]
    fn greedy_improves_monotonically_with_budget() {
        let (g, flows) = tree_fixture();
        let chain = ChainSpec::from_ratios(&[("fw", 0.5), ("opt", 0.8)]);
        let mut prev = f64::INFINITY;
        for budget in 2..=8 {
            let (dep, eval) = chain_gtp(&g, &flows, &chain, budget).unwrap();
            assert!(eval.feasible());
            assert!(dep.total_instances() <= budget);
            assert!(eval.bandwidth <= prev + 1e-9, "budget {budget}");
            prev = eval.bandwidth;
        }
    }

    #[test]
    fn expander_types_stay_at_the_egress() {
        // decrypt doubles the traffic: the greedy must never pull it
        // toward the sources even with spare budget.
        let (g, flows) = tree_fixture();
        let chain = ChainSpec::from_ratios(&[("opt", 0.5), ("decrypt", 2.0)]);
        let (_dep, eval) = chain_gtp(&g, &flows, &chain, 8).unwrap();
        assert!(eval.feasible());
        // The decrypt instances in use should effectively sit at the
        // root: placing it anywhere earlier on a path would inflate
        // every downstream edge. The optimizer spreads to sources.
        let b_only_root_decrypt = {
            let mut d = ChainDeployment::empty(2, 8);
            for src in [3u32, 4, 6, 7] {
                d.insert(0, src);
            }
            d.insert(1, 0);
            d.insert(0, 0);
            evaluate_chain(&flows, &chain, &d).bandwidth
        };
        assert!(eval.bandwidth <= b_only_root_decrypt + 1e-9);
    }
}
