//! Per-type instance sets.

use serde::{Deserialize, Serialize};
use tdmd_graph::NodeId;

/// A chain deployment: for every chain type, the set of vertices
/// hosting an instance of that type. Instances of different types may
/// share a vertex (a flow can be processed by several collocated
/// types back to back).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainDeployment {
    /// `member[t][v]` — instance of type `t` on vertex `v`.
    member: Vec<Vec<bool>>,
    /// Sorted instance lists per type.
    lists: Vec<Vec<NodeId>>,
}

impl ChainDeployment {
    /// Empty deployment for `m` types over `n` vertices.
    pub fn empty(m: usize, n: usize) -> Self {
        Self {
            member: vec![vec![false; n]; m],
            lists: vec![Vec::new(); m],
        }
    }

    /// Number of chain types.
    pub fn type_count(&self) -> usize {
        self.member.len()
    }

    /// Adds an instance of type `t` on `v` (idempotent); returns true
    /// if new.
    pub fn insert(&mut self, t: usize, v: NodeId) -> bool {
        let slot = &mut self.member[t][v as usize];
        if *slot {
            return false;
        }
        *slot = true;
        let pos = self.lists[t].partition_point(|&x| x < v);
        self.lists[t].insert(pos, v);
        true
    }

    /// Removes the instance of type `t` on `v`; returns true if it
    /// existed.
    pub fn remove(&mut self, t: usize, v: NodeId) -> bool {
        let slot = &mut self.member[t][v as usize];
        if !*slot {
            return false;
        }
        *slot = false;
        let pos = self.lists[t]
            .binary_search(&v)
            .expect("list matches bitmap");
        self.lists[t].remove(pos);
        true
    }

    /// Instance test.
    #[inline]
    pub fn has(&self, t: usize, v: NodeId) -> bool {
        self.member[t][v as usize]
    }

    /// Sorted instances of type `t`.
    pub fn instances(&self, t: usize) -> &[NodeId] {
        &self.lists[t]
    }

    /// Total number of placed instances across all types (the budget
    /// the greedy spends).
    pub fn total_instances(&self) -> usize {
        self.lists.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_per_type() {
        let mut d = ChainDeployment::empty(2, 5);
        assert!(d.insert(0, 3));
        assert!(!d.insert(0, 3));
        assert!(d.insert(1, 3), "types are independent on the same vertex");
        assert!(d.has(0, 3) && d.has(1, 3) && !d.has(0, 2));
        assert_eq!(d.total_instances(), 2);
        assert!(d.remove(0, 3));
        assert!(!d.remove(0, 3));
        assert_eq!(d.instances(0), &[] as &[u32]);
        assert_eq!(d.instances(1), &[3]);
    }

    #[test]
    fn lists_stay_sorted() {
        let mut d = ChainDeployment::empty(1, 6);
        for v in [5, 1, 3] {
            d.insert(0, v);
        }
        assert_eq!(d.instances(0), &[1, 3, 5]);
    }
}
