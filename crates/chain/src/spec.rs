//! Chain specifications.

use serde::{Deserialize, Serialize};

/// One middlebox type of a chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MiddleboxType {
    /// Human-readable name ("firewall", "optimizer", ...).
    pub name: String,
    /// Traffic-changing ratio of this type. `< 1` diminishes traffic
    /// (filters, compressors), `> 1` expands it (decryption,
    /// decompression), `= 1` is neutral (e.g. pure monitoring).
    pub lambda: f64,
}

/// A totally-ordered service chain: every flow must be processed by
/// each type, in order, exactly once.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainSpec {
    types: Vec<MiddleboxType>,
}

impl ChainSpec {
    /// Builds a chain; ratios must be finite and non-negative.
    ///
    /// # Panics
    /// Panics on an empty chain or invalid ratios.
    pub fn new(types: Vec<MiddleboxType>) -> Self {
        assert!(!types.is_empty(), "a chain needs at least one type");
        for t in &types {
            assert!(
                t.lambda.is_finite() && t.lambda >= 0.0,
                "type {} has invalid ratio {}",
                t.name,
                t.lambda
            );
        }
        Self { types }
    }

    /// Convenience constructor from `(name, λ)` pairs.
    pub fn from_ratios(pairs: &[(&str, f64)]) -> Self {
        Self::new(
            pairs
                .iter()
                .map(|&(name, lambda)| MiddleboxType {
                    name: name.to_string(),
                    lambda,
                })
                .collect(),
        )
    }

    /// The ordered types.
    pub fn types(&self) -> &[MiddleboxType] {
        &self.types
    }

    /// Number of types `m`.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// True for a single-type chain (the paper's setting).
    pub fn is_empty(&self) -> bool {
        false // by construction a chain has >= 1 type
    }

    /// Cumulative rate multiplier after completing the first `i`
    /// types (`i = 0` means unprocessed: multiplier 1).
    pub fn prefix_ratio(&self, i: usize) -> f64 {
        self.types[..i].iter().map(|t| t.lambda).product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_ratios_multiply_in_order() {
        let c = ChainSpec::from_ratios(&[("fw", 0.5), ("dec", 2.0), ("opt", 0.25)]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.prefix_ratio(0), 1.0);
        assert_eq!(c.prefix_ratio(1), 0.5);
        assert_eq!(c.prefix_ratio(2), 1.0);
        assert_eq!(c.prefix_ratio(3), 0.25);
    }

    #[test]
    #[should_panic(expected = "at least one type")]
    fn empty_chain_rejected() {
        ChainSpec::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "invalid ratio")]
    fn negative_ratio_rejected() {
        ChainSpec::from_ratios(&[("bad", -0.1)]);
    }

    #[test]
    fn serde_round_trip() {
        let c = ChainSpec::from_ratios(&[("a", 0.5), ("b", 1.5)]);
        let s = serde_json::to_string(&c).unwrap();
        let d: ChainSpec = serde_json::from_str(&s).unwrap();
        assert_eq!(c, d);
    }
}
