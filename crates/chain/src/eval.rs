//! Exact chain evaluation.
//!
//! For one flow, the optimal ordered processing against a fixed
//! instance deployment is a small DP over the flow's path: walking
//! source → destination, at every vertex the flow may complete any
//! run of consecutive pending types whose instances sit there, and
//! every edge costs `r · Λ_t` where `Λ_t` is the cumulative ratio of
//! the types completed so far. The DP state is "types completed", so
//! the whole flow costs `O(|p_f| · m)`.

use crate::deployment::ChainDeployment;
use crate::spec::ChainSpec;
use tdmd_traffic::Flow;

/// Evaluation of a chain deployment over a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainEval {
    /// Total bandwidth; flows that cannot complete the chain ride at
    /// full rate end to end.
    pub bandwidth: f64,
    /// Number of flows that cannot complete the chain in order.
    pub infeasible_flows: usize,
}

impl ChainEval {
    /// True when every flow completes the chain.
    pub fn feasible(&self) -> bool {
        self.infeasible_flows == 0
    }
}

/// Minimum bandwidth of one flow under the deployment, or `None` when
/// the flow cannot complete the chain in order along its path.
pub fn flow_chain_cost(
    flow: &Flow,
    chain: &ChainSpec,
    deployment: &ChainDeployment,
) -> Option<f64> {
    let m = chain.len();
    debug_assert_eq!(deployment.type_count(), m);
    let rate = flow.rate as f64;
    // best[t] = min cost of the traversed prefix with the first t
    // types completed.
    let mut best = vec![f64::INFINITY; m + 1];
    best[0] = 0.0;
    for (pos, &v) in flow.path.iter().enumerate() {
        // Complete pending types available at this vertex (ascending
        // pass chains multi-type completions at one vertex).
        for t in 0..m {
            if deployment.has(t, v) && best[t].is_finite() {
                let candidate = best[t];
                if candidate < best[t + 1] {
                    best[t + 1] = candidate;
                }
            }
        }
        // Traverse the edge to the next vertex at the current rates.
        if pos + 1 < flow.path.len() {
            for (t, b) in best.iter_mut().enumerate() {
                if b.is_finite() {
                    *b += rate * chain.prefix_ratio(t);
                }
            }
        }
    }
    best[m].is_finite().then_some(best[m])
}

/// Evaluates a whole workload; chain-infeasible flows are charged
/// their unprocessed bandwidth (and counted).
pub fn evaluate_chain(
    flows: &[Flow],
    chain: &ChainSpec,
    deployment: &ChainDeployment,
) -> ChainEval {
    let mut bandwidth = 0.0;
    let mut infeasible = 0usize;
    for f in flows {
        match flow_chain_cost(f, chain, deployment) {
            Some(c) => bandwidth += c,
            None => {
                bandwidth += f.unprocessed_bandwidth() as f64;
                infeasible += 1;
            }
        }
    }
    ChainEval {
        bandwidth,
        infeasible_flows: infeasible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(rate: u64, path: &[u32]) -> Flow {
        Flow::new(0, rate, path.to_vec())
    }

    /// Brute-force reference: enumerate all monotone position
    /// selections.
    fn brute(flow: &Flow, chain: &ChainSpec, dep: &ChainDeployment) -> Option<f64> {
        let m = chain.len();
        let l = flow.path.len();
        let mut best: Option<f64> = None;
        let mut qs = vec![0usize; m];
        #[allow(clippy::too_many_arguments)]
        fn rec(
            t: usize,
            from: usize,
            qs: &mut Vec<usize>,
            flow: &Flow,
            chain: &ChainSpec,
            dep: &ChainDeployment,
            l: usize,
            best: &mut Option<f64>,
        ) {
            let m = chain.len();
            if t == m {
                // Cost: each edge e carries Λ_{#(q <= e)}.
                let mut cost = 0.0;
                for e in 0..l - 1 {
                    let done = qs.iter().filter(|&&q| q <= e).count();
                    cost += flow.rate as f64 * chain.prefix_ratio(done);
                }
                if best.is_none_or(|b| cost < b) {
                    *best = Some(cost);
                }
                return;
            }
            for q in from..l {
                if dep.has(t, flow.path[q]) {
                    qs[t] = q;
                    rec(t + 1, q, qs, flow, chain, dep, l, best);
                }
            }
        }
        rec(0, 0, &mut qs, flow, chain, dep, l, &mut best);
        best
    }

    #[test]
    fn single_type_matches_the_paper_objective() {
        // One λ = 0.5 type on a 3-edge path, instance mid-path:
        // b = r(|p| − 0.5·l_v) with l = 2 downstream edges.
        let chain = ChainSpec::from_ratios(&[("m", 0.5)]);
        let f = flow(4, &[9, 7, 5, 3]);
        let mut dep = ChainDeployment::empty(1, 10);
        dep.insert(0, 7);
        assert_eq!(
            flow_chain_cost(&f, &chain, &dep),
            Some(4.0 * 3.0 - 4.0 * 0.5 * 2.0)
        );
    }

    #[test]
    fn order_constraint_is_enforced() {
        // Type 2's only instance sits before type 1's: infeasible.
        let chain = ChainSpec::from_ratios(&[("a", 0.5), ("b", 0.5)]);
        let f = flow(1, &[0, 1, 2]);
        let mut dep = ChainDeployment::empty(2, 3);
        dep.insert(0, 2); // type a only at the destination
        dep.insert(1, 0); // type b only at the source
        assert_eq!(flow_chain_cost(&f, &chain, &dep), None);
        // Same positions flipped: feasible.
        let mut dep = ChainDeployment::empty(2, 3);
        dep.insert(0, 0);
        dep.insert(1, 2);
        assert!(flow_chain_cost(&f, &chain, &dep).is_some());
    }

    #[test]
    fn collocated_types_complete_back_to_back() {
        let chain = ChainSpec::from_ratios(&[("a", 0.5), ("b", 0.5)]);
        let f = flow(4, &[0, 1, 2]);
        let mut dep = ChainDeployment::empty(2, 3);
        dep.insert(0, 0);
        dep.insert(1, 0);
        // Both complete at the source: both edges carry 4·0.25 = 1.
        assert_eq!(flow_chain_cost(&f, &chain, &dep), Some(2.0));
    }

    #[test]
    fn expanders_are_deferred() {
        // Decryption doubles traffic: with instances at both ends the
        // DP must complete it at the last moment.
        let chain = ChainSpec::from_ratios(&[("decrypt", 2.0)]);
        let f = flow(3, &[0, 1, 2, 3]);
        let mut dep = ChainDeployment::empty(1, 4);
        dep.insert(0, 0);
        dep.insert(0, 3);
        // At the destination: all 3 edges at rate 3 ⇒ 9 (vs 18 early).
        assert_eq!(flow_chain_cost(&f, &chain, &dep), Some(9.0));
    }

    #[test]
    fn shrink_then_expand_orders_optimally() {
        // Chain: optimizer (0.5) then decryption (2.0); instances of
        // both at every vertex of a 2-edge path. Optimal: shrink at
        // the source, expand at the destination ⇒ edges at 0.5·r.
        let chain = ChainSpec::from_ratios(&[("opt", 0.5), ("dec", 2.0)]);
        let f = flow(2, &[0, 1, 2]);
        let mut dep = ChainDeployment::empty(2, 3);
        for v in 0..3 {
            dep.insert(0, v);
            dep.insert(1, v);
        }
        assert_eq!(flow_chain_cost(&f, &chain, &dep), Some(2.0));
    }

    #[test]
    fn dp_matches_brute_force_on_dense_cases() {
        let chain = ChainSpec::from_ratios(&[("a", 0.5), ("b", 2.0), ("c", 0.25)]);
        // All subsets of instances over a 4-edge path, 3 types: try a
        // deterministic sample of deployments.
        let f = flow(3, &[0, 1, 2, 3, 4]);
        for mask in 0u32..(1 << 15) {
            if mask.count_ones() < 3 || mask % 7 != 0 {
                continue; // sample every 7th deployment with >= 3 instances
            }
            let mut dep = ChainDeployment::empty(3, 5);
            for t in 0..3 {
                for v in 0..5u32 {
                    if mask & (1 << (t * 5 + v as usize)) != 0 {
                        dep.insert(t, v);
                    }
                }
            }
            let dp = flow_chain_cost(&f, &chain, &dep);
            let bf = brute(&f, &chain, &dep);
            match (dp, bf) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9, "mask {mask}: {a} vs {b}"),
                (None, None) => {}
                other => panic!("mask {mask}: {other:?}"),
            }
        }
    }

    #[test]
    fn workload_evaluation_counts_infeasible_flows() {
        let chain = ChainSpec::from_ratios(&[("a", 0.5)]);
        let flows = vec![Flow::new(0, 2, vec![0, 1]), Flow::new(1, 3, vec![2, 1])];
        let mut dep = ChainDeployment::empty(1, 3);
        dep.insert(0, 0); // covers flow 0 only
        let eval = evaluate_chain(&flows, &chain, &dep);
        assert_eq!(eval.infeasible_flows, 1);
        assert!(!eval.feasible());
        // flow 0 halved on its one edge (1.0) + flow 1 unprocessed (3).
        assert_eq!(eval.bandwidth, 1.0 + 3.0);
    }
}
