//! Property tests for the service-chain extension.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdmd_chain::{chain_at_destinations, chain_gtp, evaluate_chain, ChainDeployment, ChainSpec};
use tdmd_graph::generators::trees::random_tree;
use tdmd_graph::RootedTree;
use tdmd_traffic::distribution::RateDistribution;
use tdmd_traffic::{tree_workload, WorkloadConfig};

fn fixture(seed: u64, n: usize, flows: usize) -> (tdmd_graph::DiGraph, Vec<tdmd_traffic::Flow>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = random_tree(n, &mut rng);
    let t = RootedTree::from_digraph(&g, 0).unwrap();
    let cfg =
        WorkloadConfig::with_count(flows).distribution(RateDistribution::Uniform { lo: 1, hi: 5 });
    let fl = tree_workload(&g, &t, &cfg, &mut rng);
    (g, fl)
}

fn random_chain(seed: u64, m: usize) -> ChainSpec {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A1);
    let ratios = [0.0, 0.25, 0.5, 1.0, 1.5, 2.0];
    ChainSpec::new(
        (0..m)
            .map(|i| tdmd_chain::MiddleboxType {
                name: format!("t{i}"),
                lambda: ratios[rng.gen_range(0..ratios.len())],
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Adding instances never makes any flow worse (monotonicity of
    /// the per-flow DP in the deployment).
    #[test]
    fn more_instances_never_hurt(seed in any::<u64>(), n in 3usize..14, m in 1usize..4) {
        let (g, flows) = fixture(seed, n, 5);
        let chain = random_chain(seed, m);
        let mut dep = chain_at_destinations(&g, &flows, &chain);
        let mut prev = evaluate_chain(&flows, &chain, &dep).bandwidth;
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        for _ in 0..6 {
            let t = rng.gen_range(0..chain.len());
            let v = rng.gen_range(0..n) as u32;
            dep.insert(t, v);
            let now = evaluate_chain(&flows, &chain, &dep).bandwidth;
            prop_assert!(now <= prev + 1e-9, "adding ({t},{v}) raised {prev} -> {now}");
            prev = now;
        }
    }

    /// The egress baseline is always feasible and costs exactly the
    /// unprocessed bandwidth when every prefix ratio is ≥ ... it costs
    /// exactly the unprocessed bandwidth regardless of ratios, because
    /// processing at the last vertex touches no edge.
    #[test]
    fn egress_baseline_costs_unprocessed(seed in any::<u64>(), n in 3usize..14, m in 1usize..4) {
        let (g, flows) = fixture(seed, n, 5);
        let chain = random_chain(seed, m);
        let dep = chain_at_destinations(&g, &flows, &chain);
        let eval = evaluate_chain(&flows, &chain, &dep);
        prop_assert!(eval.feasible());
        let unprocessed: f64 = flows.iter().map(|f| f.unprocessed_bandwidth() as f64).sum();
        prop_assert!((eval.bandwidth - unprocessed).abs() < 1e-9);
    }

    /// chain_gtp stays within budget, stays feasible, and never ends
    /// above the egress baseline.
    #[test]
    fn greedy_dominates_the_baseline(seed in any::<u64>(), n in 3usize..14,
                                     m in 1usize..3, extra in 0usize..6) {
        let (g, flows) = fixture(seed, n, 5);
        let chain = random_chain(seed, m);
        let baseline = chain_at_destinations(&g, &flows, &chain);
        let budget = baseline.total_instances() + extra;
        let (dep, eval) = chain_gtp(&g, &flows, &chain, budget).unwrap();
        prop_assert!(eval.feasible());
        prop_assert!(dep.total_instances() <= budget);
        let base = evaluate_chain(&flows, &chain, &baseline).bandwidth;
        prop_assert!(eval.bandwidth <= base + 1e-9);
    }

    /// A single-type chain with ratio λ reproduces the paper's
    /// objective: the chain evaluation of any deployment equals the
    /// core objective of the same vertex set.
    #[test]
    fn single_type_chain_equals_core_objective(seed in any::<u64>(), n in 3usize..14,
                                               lam_idx in 0usize..4) {
        let lambda = [0.0, 0.3, 0.5, 0.9][lam_idx];
        let (g, flows) = fixture(seed, n, 5);
        let chain = ChainSpec::from_ratios(&[("m", lambda)]);
        let inst = tdmd_core::Instance::new(g.clone(), flows.clone(), lambda, 3).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 2);
        let vs: Vec<u32> = (0..3).map(|_| rng.gen_range(0..n) as u32).collect();
        let mut dep = ChainDeployment::empty(1, n);
        for &v in &vs {
            dep.insert(0, v);
        }
        let core_dep = tdmd_core::Deployment::from_vertices(n, vs.iter().copied());
        let chain_bw = evaluate_chain(&flows, &chain, &dep).bandwidth;
        let core_bw = tdmd_core::objective::bandwidth_of(&inst, &core_dep);
        prop_assert!((chain_bw - core_bw).abs() < 1e-9, "{chain_bw} vs {core_bw}");
    }
}
