//! Extension experiments beyond the paper's evaluation.
//!
//! * [`optimality_gap`] — measured gap of every heuristic to the
//!   *certified* optimum (branch and bound) on small general
//!   instances, against the `(1 − 1/e)` guarantee of Thm. 3.
//! * [`feasibility_rate`] — how often each algorithm finds a feasible
//!   plan at a given budget without resampling the workload (the
//!   paper's §6.4 observation that infeasibility is more likely in
//!   general topologies, quantified).
//! * [`dynamic_replanning`] — static vs replanned placement over a
//!   dynamic flow timeline (`tdmd-sim::timeline`).
//! * [`gtp_variant_speedup`] — eager vs CELF-lazy vs Rayon-parallel
//!   GTP wall times at growing topology size (outputs are identical;
//!   property-tested elsewhere).

use crate::scenarios::{general_instance, tree_instance, Scenario};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use tdmd_core::algorithms::branch_bound::branch_and_bound;
use tdmd_core::algorithms::gtp::{gtp_budgeted, gtp_lazy, gtp_parallel};
use tdmd_core::algorithms::Algorithm;
use tdmd_core::objective::bandwidth_of;
use tdmd_graph::RootedTree;
use tdmd_sim::timeline::{simulate_replanned, simulate_static, DynamicScenario, FlowSpan};
use tdmd_traffic::{tree_workload, Flow, WorkloadConfig};

/// One rendered extension experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtraResult {
    /// Short id (file stem for the CSV).
    pub name: String,
    /// Rendered text report.
    pub text: String,
    /// Machine-readable CSV.
    pub csv: String,
}

/// Mean optimality gap (percent above the optimum) of the heuristics
/// on small general instances where branch and bound certifies the
/// optimum.
pub fn optimality_gap(trials: usize, seed: u64) -> ExtraResult {
    let algs = [
        Algorithm::Gtp,
        Algorithm::GtpLs,
        Algorithm::BestEffort,
        Algorithm::Random,
    ];
    let mut gaps: Vec<Vec<f64>> = vec![Vec::new(); algs.len()];
    let mut done = 0usize;
    let mut t = 0u64;
    while done < trials && t < trials as u64 * 20 {
        t += 1;
        let mut rng = StdRng::seed_from_u64(seed ^ t);
        let s = Scenario {
            size: 14,
            density: 0.4,
            k: 5,
            ..Scenario::general_default()
        };
        let inst = general_instance(&mut rng, s);
        let Ok((_, opt, _)) = branch_and_bound(&inst, s.k, 5_000_000) else {
            continue;
        };
        let mut row = Vec::with_capacity(algs.len());
        for alg in &algs {
            match alg.run(&inst, &mut rng) {
                Ok(d) => row.push(100.0 * (bandwidth_of(&inst, &d) / opt - 1.0)),
                Err(_) => {
                    row.clear();
                    break;
                }
            }
        }
        if row.len() == algs.len() {
            for (g, v) in gaps.iter_mut().zip(row) {
                g.push(v);
            }
            done += 1;
        }
    }
    let mut text = String::from("== extension: optimality gap vs certified optimum ==\n");
    let mut csv = String::from("algorithm,mean_gap_pct,max_gap_pct,trials\n");
    for (alg, g) in algs.iter().zip(&gaps) {
        let mean = if g.is_empty() {
            0.0
        } else {
            g.iter().sum::<f64>() / g.len() as f64
        };
        let max = g.iter().cloned().fold(0.0f64, f64::max);
        text.push_str(&format!(
            "  {:<12} mean gap {:>6.2}%   worst {:>6.2}%   ({} instances)\n",
            alg.name(),
            mean,
            max,
            g.len()
        ));
        csv.push_str(&format!("{},{mean},{max},{}\n", alg.name(), g.len()));
    }
    ExtraResult {
        name: "ext_gap".into(),
        text,
        csv,
    }
}

/// Fraction of freshly generated workloads for which each algorithm
/// finds a feasible plan at budget `k`, on tree vs general topologies.
pub fn feasibility_rate(trials: usize, seed: u64) -> ExtraResult {
    let ks = [2usize, 4, 6, 8];
    let mut text = String::from("== extension: feasibility rate without resampling ==\n");
    let mut csv = String::from("topology,k,algorithm,feasible_rate\n");
    for (topo, is_tree) in [("tree", true), ("general", false)] {
        for &k in &ks {
            let algs: &[Algorithm] = if is_tree {
                &[Algorithm::Gtp, Algorithm::Random, Algorithm::Dp]
            } else {
                &[Algorithm::Gtp, Algorithm::Random]
            };
            for alg in algs {
                let mut ok = 0usize;
                for t in 0..trials {
                    let mut rng = StdRng::seed_from_u64(seed ^ (t as u64) << 8 ^ k as u64);
                    let s = if is_tree {
                        Scenario {
                            size: 18,
                            k,
                            density: 0.4,
                            ..Scenario::tree_default()
                        }
                    } else {
                        Scenario {
                            size: 22,
                            k,
                            density: 0.4,
                            ..Scenario::general_default()
                        }
                    };
                    let inst = if is_tree {
                        tree_instance(&mut rng, s)
                    } else {
                        general_instance(&mut rng, s)
                    };
                    // One shot, deliberately few retries for Random.
                    let feasible = match alg {
                        Algorithm::Random => {
                            tdmd_core::algorithms::random::random_feasible(&inst, k, &mut rng, 1)
                                .is_ok()
                        }
                        other => other.run(&inst, &mut rng).is_ok(),
                    };
                    ok += usize::from(feasible);
                }
                let rate = ok as f64 / trials as f64;
                text.push_str(&format!(
                    "  {topo:<8} k={k:<2} {:<8} feasible {:>5.1}%\n",
                    alg.name(),
                    100.0 * rate
                ));
                csv.push_str(&format!("{topo},{k},{},{rate}\n", alg.name()));
            }
        }
    }
    ExtraResult {
        name: "ext_feasibility".into(),
        text,
        csv,
    }
}

/// Static vs replanned placement over a random dynamic timeline on a
/// tree.
pub fn dynamic_replanning(seed: u64) -> ExtraResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let s = Scenario {
        size: 16,
        density: 0.5,
        k: 4,
        ..Scenario::tree_default()
    };
    let base = tree_instance(&mut rng, s);
    let tree = RootedTree::from_digraph(base.graph(), 0).expect("tree");
    // Draw flow lifetimes over a 1000-unit horizon.
    let cfg = WorkloadConfig::with_count(24);
    let flows = tree_workload(base.graph(), &tree, &cfg, &mut rng);
    let spans: Vec<FlowSpan> = flows
        .into_iter()
        .map(|f| {
            let start = rng.gen_range(0..800u64);
            let end = start + rng.gen_range(100..200u64);
            FlowSpan {
                start_us: start,
                end_us: end,
                flow: Flow::new(0, f.rate, f.path),
            }
        })
        .collect();
    let scn = DynamicScenario {
        graph: base.graph().clone(),
        lambda: 0.5,
        k: 4,
        spans,
    };
    let stat = simulate_static(&scn, Algorithm::Dp, seed).expect("static plan feasible");
    let re = simulate_replanned(&scn, Algorithm::Dp, seed).expect("replanning feasible");
    let mut text = String::from("== extension: static vs replanned DP over a flow timeline ==\n");
    let mut csv = String::from("time,active,static_bw,replanned_bw\n");
    let (mut sum_s, mut sum_r) = (0.0, 0.0);
    for (a, b) in stat.iter().zip(&re) {
        sum_s += a.bandwidth;
        sum_r += b.bandwidth;
        csv.push_str(&format!(
            "{},{},{},{}\n",
            a.time_us, a.active_flows, a.bandwidth, b.bandwidth
        ));
    }
    text.push_str(&format!(
        "  events: {}   Σ static {:.1}   Σ replanned {:.1}   saved {:.1}%\n",
        stat.len(),
        tdmd_obs::normalize_zero(sum_s),
        tdmd_obs::normalize_zero(sum_r),
        tdmd_obs::normalize_zero(100.0 * (1.0 - sum_r / sum_s.max(1e-12)))
    ));
    ExtraResult {
        name: "ext_dynamic".into(),
        text,
        csv,
    }
}

/// Wall-clock comparison of the three GTP implementations.
pub fn gtp_variant_speedup(seed: u64) -> ExtraResult {
    let mut text = String::from("== extension: GTP implementation variants ==\n");
    let mut csv = String::from("size,eager_ms,lazy_ms,parallel_ms\n");
    for &size in &[20usize, 36, 52] {
        let s = Scenario {
            size,
            k: 12,
            ..Scenario::general_default()
        };
        let inst = general_instance(&mut StdRng::seed_from_u64(seed), s);
        let time = |f: &dyn Fn()| {
            let start = Instant::now();
            for _ in 0..20 {
                f();
            }
            start.elapsed().as_secs_f64() * 1e3 / 20.0
        };
        let eager = time(&|| {
            gtp_budgeted(&inst, 12).expect("feasible");
        });
        let lazy = time(&|| {
            gtp_lazy(&inst, 12).expect("feasible");
        });
        let par = time(&|| {
            gtp_parallel(&inst, 12).expect("feasible");
        });
        text.push_str(&format!(
            "  size {size:<3} eager {eager:>7.3} ms   lazy {lazy:>7.3} ms   parallel {par:>7.3} ms\n"
        ));
        csv.push_str(&format!("{size},{eager},{lazy},{par}\n"));
    }
    ExtraResult {
        name: "ext_speedup".into(),
        text,
        csv,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_report_contains_all_algorithms() {
        let r = optimality_gap(3, 11);
        for name in ["GTP", "GTP+LS", "Best-effort", "Random"] {
            assert!(r.text.contains(name), "{name} missing");
        }
        assert!(r.csv.lines().count() >= 5);
    }

    #[test]
    fn feasibility_rates_are_probabilities() {
        let r = feasibility_rate(4, 13);
        for line in r.csv.lines().skip(1) {
            let rate: f64 = line.rsplit(',').next().unwrap().parse().unwrap();
            assert!((0.0..=1.0).contains(&rate), "{line}");
        }
        // DP on trees with k >= 1 is always feasible.
        assert!(r
            .csv
            .lines()
            .any(|l| l.starts_with("tree,") && l.contains("DP,1")));
    }

    #[test]
    fn dynamic_report_shows_savings_or_tie() {
        let r = dynamic_replanning(17);
        assert!(r.text.contains("replanned"));
        // Replanned never exceeds static in total.
        let rows: Vec<(f64, f64)> = r
            .csv
            .lines()
            .skip(1)
            .map(|l| {
                let f: Vec<&str> = l.split(',').collect();
                (f[2].parse().unwrap(), f[3].parse().unwrap())
            })
            .collect();
        for (s, re) in rows {
            assert!(re <= s + 1e-9);
        }
    }

    #[test]
    fn speedup_report_has_three_sizes() {
        let r = gtp_variant_speedup(19);
        assert_eq!(r.csv.lines().count(), 4);
    }
}

/// Service-chain budget sweep: bandwidth of the shared-instance chain
/// greedy vs the egress baseline on a tree workload (extension over
/// the paper's single-type setting, `tdmd-chain`).
pub fn chain_budget_sweep(seed: u64) -> ExtraResult {
    use tdmd_chain::{chain_at_destinations, chain_gtp, evaluate_chain, ChainSpec};
    let mut rng = StdRng::seed_from_u64(seed);
    let s = Scenario {
        size: 16,
        density: 0.5,
        k: 0,
        ..Scenario::tree_default()
    };
    let base = tree_instance(&mut rng, s);
    let flows = base.flows().to_vec();
    let chain = ChainSpec::from_ratios(&[("firewall", 1.0), ("optimizer", 0.5), ("ids", 0.8)]);
    let egress = chain_at_destinations(base.graph(), &flows, &chain);
    let egress_bw = evaluate_chain(&flows, &chain, &egress).bandwidth;
    let mut text = String::from("== extension: service-chain budget sweep (fw -> opt -> ids) ==\n");
    let mut csv = String::from("budget,instances,bandwidth,egress_bandwidth\n");
    text.push_str(&format!(
        "  egress baseline: {} instances, bandwidth {egress_bw:.0}\n",
        egress.total_instances()
    ));
    for budget in [3usize, 6, 9, 12, 18, 24] {
        match chain_gtp(base.graph(), &flows, &chain, budget) {
            Ok((dep, eval)) => {
                text.push_str(&format!(
                    "  budget {budget:>2}: {:>2} instances, bandwidth {:>8.0} ({:>5.1}% of egress)\n",
                    dep.total_instances(),
                    eval.bandwidth,
                    100.0 * eval.bandwidth / egress_bw
                ));
                csv.push_str(&format!(
                    "{budget},{},{},{egress_bw}\n",
                    dep.total_instances(),
                    eval.bandwidth
                ));
            }
            Err(e) => text.push_str(&format!("  budget {budget:>2}: {e}\n")),
        }
    }
    ExtraResult {
        name: "ext_chain".into(),
        text,
        csv,
    }
}

/// Capacitated sweep: bandwidth of capacity-constrained GTP as the
/// per-middlebox capacity tightens (extension, `tdmd-core::capacitated`).
pub fn capacity_sweep(seed: u64) -> ExtraResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let s = Scenario {
        size: 16,
        density: 0.4,
        k: 6,
        ..Scenario::tree_default()
    };
    let inst = tree_instance(&mut rng, s);
    let n_flows = inst.flows().len();
    let mut text = String::from("== extension: per-middlebox capacity sweep (k = 6) ==\n");
    let mut csv = String::from("capacity,bandwidth,feasible\n");
    // Surface an infeasible baseline as such instead of folding it
    // into a NaN that renders as "NaN" downstream.
    match tdmd_core::algorithms::gtp::gtp_budgeted(&inst, 6) {
        Ok(d) => {
            let uncapped = bandwidth_of(&inst, &d);
            text.push_str(&format!(
                "  {n_flows} flows; uncapacitated GTP: {uncapped:.0}\n"
            ));
        }
        Err(e) => text.push_str(&format!("  {n_flows} flows; uncapacitated GTP: {e}\n")),
    }
    for cap in [n_flows, n_flows / 2, n_flows / 3, n_flows / 4, n_flows / 6] {
        let cap = cap.max(1);
        match tdmd_core::capacitated::gtp_capacitated(&inst, 6, cap) {
            Ok((_, _, b)) => {
                text.push_str(&format!("  cap {cap:>3}: bandwidth {b:>8.0}\n"));
                csv.push_str(&format!("{cap},{b},true\n"));
            }
            Err(_) => {
                text.push_str(&format!("  cap {cap:>3}: infeasible within k = 6\n"));
                csv.push_str(&format!("{cap},,false\n"));
            }
        }
    }
    ExtraResult {
        name: "ext_capacity".into(),
        text,
        csv,
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;

    #[test]
    fn chain_sweep_improves_over_egress() {
        let r = chain_budget_sweep(31);
        assert!(r.text.contains("egress baseline"));
        // The largest budget's bandwidth must be below the egress.
        let rows: Vec<(usize, f64, f64)> = r
            .csv
            .lines()
            .skip(1)
            .map(|l| {
                let f: Vec<&str> = l.split(',').collect();
                (
                    f[0].parse().unwrap(),
                    f[2].parse().unwrap(),
                    f[3].parse().unwrap(),
                )
            })
            .collect();
        let (_, best, egress) = rows.last().copied().expect("rows exist");
        assert!(best < egress, "budget 24 should beat the egress baseline");
        // Monotone in budget.
        for w in rows.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9);
        }
    }

    #[test]
    fn capacity_sweep_reports_all_caps() {
        let r = capacity_sweep(33);
        assert!(r.csv.lines().count() >= 5);
        assert!(r.text.contains("uncapacitated"));
        assert!(
            !r.text.contains("NaN"),
            "infeasibility must be reported, not formatted as NaN: {}",
            r.text
        );
    }
}
