//! SVG rendering of figure results.
//!
//! Turns a [`crate::figure::FigureResult`] into the paper's
//! line-charts-with-error-bars, as standalone SVG files — no plotting
//! dependency, just generated markup. Each figure yields two panels:
//! `(a)` bandwidth consumption and `(b)` execution time.

use crate::figure::{FigureResult, Series};

/// Which metric panel to draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Panel {
    /// Panel (a): total bandwidth consumption.
    Bandwidth,
    /// Panel (b): execution time in milliseconds.
    TimeMs,
}

impl Panel {
    fn label(self) -> &'static str {
        match self {
            Panel::Bandwidth => "bandwidth consumption",
            Panel::TimeMs => "execution time [ms]",
        }
    }

    fn value(self, p: &crate::figure::SweepPoint) -> (f64, f64) {
        match self {
            Panel::Bandwidth => (p.bandwidth, p.bandwidth_std),
            Panel::TimeMs => (p.time_ms, p.time_std),
        }
    }
}

/// Distinguishable line colors (paper-style ordering).
const COLORS: [&str; 8] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
];

const W: f64 = 640.0;
const H: f64 = 420.0;
const ML: f64 = 70.0; // left margin
const MR: f64 = 20.0;
const MT: f64 = 40.0;
const MB: f64 = 50.0;

/// Renders one metric panel of a figure as a standalone SVG document.
pub fn render_svg(fig: &FigureResult, panel: Panel) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{W}\" height=\"{H}\" \
         viewBox=\"0 0 {W} {H}\" font-family=\"sans-serif\" font-size=\"12\">\n"
    ));
    out.push_str(&format!(
        "  <title>{} — {}</title>\n",
        escape(&fig.title),
        panel.label()
    ));
    out.push_str(&format!(
        "  <rect width=\"{W}\" height=\"{H}\" fill=\"white\"/>\n  <text x=\"{}\" y=\"20\" \
         text-anchor=\"middle\" font-size=\"14\">{} — {}</text>\n",
        W / 2.0,
        escape(&fig.title),
        panel.label()
    ));

    // Data ranges (error bars included).
    let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_lo, mut y_hi) = (0.0f64, f64::NEG_INFINITY);
    for s in &fig.series {
        for p in &s.points {
            let (v, e) = panel.value(p);
            x_lo = x_lo.min(p.x);
            x_hi = x_hi.max(p.x);
            y_lo = y_lo.min(v - e);
            y_hi = y_hi.max(v + e);
        }
    }
    if !x_lo.is_finite() || !y_hi.is_finite() {
        out.push_str("  <text x=\"20\" y=\"40\">no data</text>\n</svg>\n");
        return out;
    }
    if (x_hi - x_lo).abs() < 1e-12 {
        x_hi = x_lo + 1.0;
    }
    if (y_hi - y_lo).abs() < 1e-12 {
        y_hi = y_lo + 1.0;
    }
    let px = |x: f64| ML + (x - x_lo) / (x_hi - x_lo) * (W - ML - MR);
    let py = |y: f64| H - MB - (y - y_lo) / (y_hi - y_lo) * (H - MT - MB);

    // Axes with 5 ticks each.
    out.push_str(&format!(
        "  <line x1=\"{ML}\" y1=\"{0}\" x2=\"{1}\" y2=\"{0}\" stroke=\"black\"/>\n",
        H - MB,
        W - MR
    ));
    out.push_str(&format!(
        "  <line x1=\"{ML}\" y1=\"{MT}\" x2=\"{ML}\" y2=\"{}\" stroke=\"black\"/>\n",
        H - MB
    ));
    for i in 0..=4 {
        let fx = x_lo + (x_hi - x_lo) * i as f64 / 4.0;
        let fy = y_lo + (y_hi - y_lo) * i as f64 / 4.0;
        out.push_str(&format!(
            "  <line x1=\"{0}\" y1=\"{1}\" x2=\"{0}\" y2=\"{2}\" stroke=\"black\"/>\n  \
             <text x=\"{0}\" y=\"{3}\" text-anchor=\"middle\">{4}</text>\n",
            px(fx),
            H - MB,
            H - MB + 5.0,
            H - MB + 20.0,
            trim(fx)
        ));
        out.push_str(&format!(
            "  <line x1=\"{0}\" y1=\"{1}\" x2=\"{2}\" y2=\"{1}\" stroke=\"black\"/>\n  \
             <text x=\"{3}\" y=\"{4}\" text-anchor=\"end\">{5}</text>\n",
            ML - 5.0,
            py(fy),
            ML,
            ML - 8.0,
            py(fy) + 4.0,
            trim(fy)
        ));
    }
    out.push_str(&format!(
        "  <text x=\"{}\" y=\"{}\" text-anchor=\"middle\">{}</text>\n",
        (ML + W - MR) / 2.0,
        H - 10.0,
        escape(&fig.x_label)
    ));

    // Series: polyline + error bars + legend entry.
    for (si, s) in fig.series.iter().enumerate() {
        let color = COLORS[si % COLORS.len()];
        out.push_str(&series_markup(s, panel, color, &px, &py));
        let ly = MT + 14.0 * si as f64;
        out.push_str(&format!(
            "  <line x1=\"{0}\" y1=\"{ly}\" x2=\"{1}\" y2=\"{ly}\" stroke=\"{color}\" \
             stroke-width=\"2\"/>\n  <text x=\"{2}\" y=\"{3}\">{4}</text>\n",
            W - MR - 130.0,
            W - MR - 105.0,
            W - MR - 100.0,
            ly + 4.0,
            escape(&s.algorithm)
        ));
    }
    out.push_str("</svg>\n");
    out
}

fn series_markup(
    s: &Series,
    panel: Panel,
    color: &str,
    px: &dyn Fn(f64) -> f64,
    py: &dyn Fn(f64) -> f64,
) -> String {
    let mut out = String::new();
    let pts: Vec<String> = s
        .points
        .iter()
        .map(|p| {
            let (v, _) = panel.value(p);
            format!("{:.2},{:.2}", px(p.x), py(v))
        })
        .collect();
    out.push_str(&format!(
        "  <polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"2\"/>\n",
        pts.join(" ")
    ));
    for p in &s.points {
        let (v, e) = panel.value(p);
        let (x, y) = (px(p.x), py(v));
        out.push_str(&format!(
            "  <circle cx=\"{x:.2}\" cy=\"{y:.2}\" r=\"3\" fill=\"{color}\"/>\n"
        ));
        if e > 0.0 {
            let (y1, y2) = (py(v - e), py(v + e));
            out.push_str(&format!(
                "  <line x1=\"{x:.2}\" y1=\"{y1:.2}\" x2=\"{x:.2}\" y2=\"{y2:.2}\" \
                 stroke=\"{color}\"/>\n  <line x1=\"{0:.2}\" y1=\"{y1:.2}\" x2=\"{1:.2}\" \
                 y2=\"{y1:.2}\" stroke=\"{color}\"/>\n  <line x1=\"{0:.2}\" y1=\"{y2:.2}\" \
                 x2=\"{1:.2}\" y2=\"{y2:.2}\" stroke=\"{color}\"/>\n",
                x - 3.0,
                x + 3.0
            ));
        }
    }
    out
}

/// Minimal XML escaping for labels.
fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Compact tick label.
fn trim(x: f64) -> String {
    if x.abs() >= 1000.0 {
        format!("{:.0}", x)
    } else if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure::{Series, SweepPoint};

    fn toy() -> FigureResult {
        let mk = |x: f64, b: f64| SweepPoint {
            x,
            bandwidth: b,
            bandwidth_std: b / 10.0,
            time_ms: b / 100.0,
            time_std: 0.0,
            trials: 3,
        };
        FigureResult {
            name: "figX".into(),
            title: "toy & demo".into(),
            x_label: "k".into(),
            series: vec![
                Series {
                    algorithm: "GTP".into(),
                    points: vec![mk(1.0, 100.0), mk(2.0, 80.0)],
                },
                Series {
                    algorithm: "DP".into(),
                    points: vec![mk(1.0, 100.0), mk(2.0, 70.0)],
                },
            ],
        }
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = render_svg(&toy(), Panel::Bandwidth);
        assert!(svg.starts_with("<svg "));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One polyline per series.
        assert_eq!(svg.matches("<polyline").count(), 2);
        // Four data points drawn as circles.
        assert_eq!(svg.matches("<circle").count(), 4);
        // Legend lists both algorithms.
        assert!(svg.contains(">GTP<") && svg.contains(">DP<"));
    }

    #[test]
    fn error_bars_appear_only_when_nonzero() {
        let bw = render_svg(&toy(), Panel::Bandwidth);
        let t = render_svg(&toy(), Panel::TimeMs);
        assert!(bw.matches("<line").count() > t.matches("<line").count());
        assert!(t.contains("execution time"));
    }

    #[test]
    fn titles_are_escaped() {
        let svg = render_svg(&toy(), Panel::Bandwidth);
        assert!(svg.contains("toy &amp; demo"));
        assert!(!svg.contains("toy & demo"));
    }

    #[test]
    fn empty_figure_degrades_gracefully() {
        let fig = FigureResult {
            name: "e".into(),
            title: "empty".into(),
            x_label: "x".into(),
            series: vec![],
        };
        let svg = render_svg(&fig, Panel::Bandwidth);
        assert!(svg.contains("no data"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let mut fig = toy();
        for s in &mut fig.series {
            for p in &mut s.points {
                p.bandwidth = 5.0;
                p.bandwidth_std = 0.0;
                p.x = 3.0;
            }
        }
        let svg = render_svg(&fig, Panel::Bandwidth);
        assert!(!svg.contains("NaN"));
    }
}
