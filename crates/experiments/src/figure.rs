//! Figure data model, sweep driver, text rendering and CSV export.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use tdmd_core::algorithms::Algorithm;
use tdmd_core::Instance;
use tdmd_sim::{run_comparison, TrialConfig};

/// One point of a sweep for one algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Independent-variable value.
    pub x: f64,
    /// Mean bandwidth consumption.
    pub bandwidth: f64,
    /// Bandwidth std-dev (error bar).
    pub bandwidth_std: f64,
    /// Mean execution time (ms).
    pub time_ms: f64,
    /// Time std-dev.
    pub time_std: f64,
    /// Contributing trials.
    pub trials: usize,
}

/// One algorithm's line across the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Algorithm display name.
    pub algorithm: String,
    /// Points in sweep order.
    pub points: Vec<SweepPoint>,
}

/// A regenerated figure: both metric panels for every algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureResult {
    /// Figure id, e.g. "fig09".
    pub name: String,
    /// Human title.
    pub title: String,
    /// Independent-variable label.
    pub x_label: String,
    /// The lines.
    pub series: Vec<Series>,
}

/// Sweep driver: runs the paper's multi-trial comparison at every `x`.
pub fn sweep<F>(
    name: &str,
    title: &str,
    x_label: &str,
    xs: &[f64],
    algorithms: &[Algorithm],
    cfg: &TrialConfig,
    make: F,
) -> FigureResult
where
    F: Fn(&mut StdRng, f64) -> Instance + Sync,
{
    let mut series: Vec<Series> = algorithms
        .iter()
        .map(|a| Series {
            algorithm: a.name().to_string(),
            points: Vec::new(),
        })
        .collect();
    for &x in xs {
        let stats = run_comparison(|rng| make(rng, x), algorithms, cfg);
        for (s, st) in series.iter_mut().zip(stats) {
            s.points.push(SweepPoint {
                x,
                bandwidth: st.mean_bandwidth,
                bandwidth_std: st.std_bandwidth,
                time_ms: st.mean_time_ms,
                time_std: st.std_time_ms,
                trials: st.trials,
            });
        }
    }
    FigureResult {
        name: name.to_string(),
        title: title.to_string(),
        x_label: x_label.to_string(),
        series,
    }
}

impl FigureResult {
    /// Renders the two metric panels as fixed-width text tables (the
    /// textual analogue of the paper's (a)/(b) sub-figures).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.name, self.title));
        for (panel, label) in [
            (0, "(a) bandwidth consumption"),
            (1, "(b) execution time [ms]"),
        ] {
            out.push_str(&format!("\n{label}\n"));
            out.push_str(&format!("{:>12}", self.x_label));
            for s in &self.series {
                out.push_str(&format!("{:>24}", s.algorithm));
            }
            out.push('\n');
            let n_points = self.series.first().map_or(0, |s| s.points.len());
            for i in 0..n_points {
                let x = self.series[0].points[i].x;
                out.push_str(&format!("{x:>12.3}"));
                for s in &self.series {
                    let p = &s.points[i];
                    let (m, sd) = if panel == 0 {
                        (p.bandwidth, p.bandwidth_std)
                    } else {
                        (p.time_ms, p.time_std)
                    };
                    // A -0.0 mean would render as "-0.00".
                    let m = tdmd_obs::normalize_zero(m);
                    let sd = tdmd_obs::normalize_zero(sd);
                    out.push_str(&format!("{:>24}", format!("{m:.2} ± {sd:.2}")));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Serializes the figure as CSV
    /// (`figure,x,algorithm,bandwidth,bandwidth_std,time_ms,time_std,trials`).
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("figure,x,algorithm,bandwidth,bandwidth_std,time_ms,time_std,trials\n");
        for s in &self.series {
            for p in &s.points {
                out.push_str(&format!(
                    "{},{},{},{},{},{},{},{}\n",
                    self.name,
                    p.x,
                    s.algorithm,
                    p.bandwidth,
                    p.bandwidth_std,
                    p.time_ms,
                    p.time_std,
                    p.trials
                ));
            }
        }
        out
    }

    /// Looks up a series by algorithm name.
    pub fn series_of(&self, algorithm: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.algorithm == algorithm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_figure() -> FigureResult {
        FigureResult {
            name: "figX".into(),
            title: "toy".into(),
            x_label: "k".into(),
            series: vec![Series {
                algorithm: "GTP".into(),
                points: vec![SweepPoint {
                    x: 1.0,
                    bandwidth: 10.0,
                    bandwidth_std: 0.5,
                    time_ms: 2.0,
                    time_std: 0.1,
                    trials: 5,
                }],
            }],
        }
    }

    #[test]
    fn render_contains_both_panels() {
        let r = toy_figure().render();
        assert!(r.contains("bandwidth consumption"));
        assert!(r.contains("execution time"));
        assert!(r.contains("10.00 ± 0.50"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = toy_figure().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("figure,x,"));
        assert!(lines[1].starts_with("figX,1,GTP,10,"));
    }

    #[test]
    fn series_lookup() {
        let f = toy_figure();
        assert!(f.series_of("GTP").is_some());
        assert!(f.series_of("DP").is_none());
    }

    #[test]
    fn json_round_trip() {
        let f = toy_figure();
        let s = serde_json::to_string(&f).unwrap();
        let g: FigureResult = serde_json::from_str(&s).unwrap();
        assert_eq!(f, g);
    }
}
