//! Fig. 11 — tree topology: both metrics vs the flow density (0.3 to
//! 0.8, interval 0.1), five algorithms.

use crate::figure::{sweep, FigureResult};
use crate::scenarios::{tree_instance, Scenario};
use tdmd_core::algorithms::Algorithm;
use tdmd_sim::TrialConfig;

/// Density sweep from the paper.
pub fn densities() -> Vec<f64> {
    (3..=8).map(|i| i as f64 / 10.0).collect()
}

/// Regenerates Fig. 11 at the paper's scenario.
pub fn run(cfg: &TrialConfig) -> FigureResult {
    run_at(cfg, Scenario::tree_default())
}

/// Sweep with an arbitrary base scenario.
pub fn run_at(cfg: &TrialConfig, base: Scenario) -> FigureResult {
    sweep(
        "fig11",
        "flow density in tree",
        "density",
        &densities(),
        &Algorithm::tree_suite(),
        cfg,
        |rng, x| tree_instance(rng, Scenario { density: x, ..base }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::quick_protocol;

    #[test]
    fn bandwidth_grows_roughly_linearly_with_density() {
        let base = Scenario {
            size: 10,
            k: 4,
            ..Scenario::tree_default()
        };
        let fig = run_at(&quick_protocol(), base);
        let gtp = fig.series_of("GTP").unwrap();
        let first = gtp.points.first().unwrap().bandwidth;
        let last = gtp.points.last().unwrap().bandwidth;
        assert!(
            last > 1.5 * first,
            "density 0.8 ({last}) should cost well above density 0.3 ({first})"
        );
    }
}
