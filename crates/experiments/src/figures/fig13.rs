//! Fig. 13 — general topology: both metrics vs the middlebox number
//! constraint `k` (12 to 22, interval 2), three algorithms (Random,
//! Best-effort, GTP).

use crate::figure::{sweep, FigureResult};
use crate::scenarios::{general_instance, Scenario};
use tdmd_core::algorithms::Algorithm;
use tdmd_sim::TrialConfig;

/// Sweep values from the paper.
pub const KS: [usize; 6] = [12, 14, 16, 18, 20, 22];

/// Regenerates Fig. 13 at the paper's scenario.
pub fn run(cfg: &TrialConfig) -> FigureResult {
    run_at(cfg, Scenario::general_default())
}

/// Sweep with an arbitrary base scenario.
pub fn run_at(cfg: &TrialConfig, base: Scenario) -> FigureResult {
    let xs: Vec<f64> = KS.iter().map(|&k| k as f64).collect();
    sweep(
        "fig13",
        "middlebox number k in a general topology",
        "k",
        &xs,
        &Algorithm::general_suite(),
        cfg,
        |rng, x| {
            general_instance(
                rng,
                Scenario {
                    k: x as usize,
                    ..base
                },
            )
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::quick_protocol;

    #[test]
    fn gtp_never_loses_to_random() {
        let base = Scenario {
            size: 18,
            density: 0.3,
            ..Scenario::general_default()
        };
        let fig = run_at(&quick_protocol(), base);
        let gtp = fig.series_of("GTP").unwrap();
        let rnd = fig.series_of("Random").unwrap();
        for (g, r) in gtp.points.iter().zip(&rnd.points) {
            assert!(g.bandwidth <= r.bandwidth + 1e-6, "GTP lost at k={}", g.x);
        }
    }
}
