//! Fig. 16 — general topology: both metrics vs the topology size (12
//! to 52, interval 8), three algorithms.

use crate::figure::{sweep, FigureResult};
use crate::scenarios::{general_instance, Scenario};
use tdmd_core::algorithms::Algorithm;
use tdmd_sim::TrialConfig;

/// Size sweep from the paper.
pub const SIZES: [usize; 6] = [12, 20, 28, 36, 44, 52];

/// Regenerates Fig. 16 at the paper's scenario.
pub fn run(cfg: &TrialConfig) -> FigureResult {
    run_at(cfg, Scenario::general_default())
}

/// Sweep with an arbitrary base scenario.
pub fn run_at(cfg: &TrialConfig, base: Scenario) -> FigureResult {
    let xs: Vec<f64> = SIZES.iter().map(|&s| s as f64).collect();
    sweep(
        "fig16",
        "topology size in a general topology",
        "size",
        &xs,
        &Algorithm::general_suite(),
        cfg,
        |rng, x| {
            general_instance(
                rng,
                Scenario {
                    size: x as usize,
                    ..base
                },
            )
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::quick_protocol;

    #[test]
    fn lines_grow_almost_linearly_with_size() {
        let base = Scenario {
            density: 0.3,
            k: 8,
            ..Scenario::general_default()
        };
        let mut cfg = quick_protocol();
        cfg.trials = 1;
        let fig = run_at(&cfg, base);
        let gtp = fig.series_of("GTP").unwrap();
        let first = gtp.points.first().unwrap().bandwidth;
        let last = gtp.points.last().unwrap().bandwidth;
        assert!(
            last > 2.0 * first,
            "52 vertices ({last}) ≫ 12 vertices ({first})"
        );
    }
}
