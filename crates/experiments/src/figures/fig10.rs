//! Fig. 10 — tree topology: both metrics vs the traffic-changing
//! ratio `λ` (0 to 0.9, interval 0.1), five algorithms.

use crate::figure::{sweep, FigureResult};
use crate::scenarios::{tree_instance, Scenario};
use tdmd_core::algorithms::Algorithm;
use tdmd_sim::TrialConfig;

/// λ sweep from the paper.
pub fn lambdas() -> Vec<f64> {
    (0..10).map(|i| i as f64 / 10.0).collect()
}

/// Regenerates Fig. 10 at the paper's scenario.
pub fn run(cfg: &TrialConfig) -> FigureResult {
    run_at(cfg, Scenario::tree_default())
}

/// Sweep with an arbitrary base scenario.
pub fn run_at(cfg: &TrialConfig, base: Scenario) -> FigureResult {
    sweep(
        "fig10",
        "traffic-changing ratio in tree",
        "lambda",
        &lambdas(),
        &Algorithm::tree_suite(),
        cfg,
        |rng, x| tree_instance(rng, Scenario { lambda: x, ..base }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::quick_protocol;

    #[test]
    fn bandwidth_grows_with_lambda() {
        let base = Scenario {
            size: 10,
            density: 0.3,
            k: 4,
            ..Scenario::tree_default()
        };
        let fig = run_at(&quick_protocol(), base);
        let dp = fig.series_of("DP").unwrap();
        // With λ = 1 no middlebox saves anything; with λ = 0 savings
        // are maximal — DP's line must rise over the sweep ends.
        let first = dp.points.first().unwrap().bandwidth;
        let last = dp.points.last().unwrap().bandwidth;
        assert!(
            last > first,
            "λ=0.9 ({last}) should cost more than λ=0 ({first})"
        );
    }
}
