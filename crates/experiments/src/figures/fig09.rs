//! Fig. 9 — tree topology: bandwidth consumption and execution time
//! vs the middlebox number constraint `k` (1 to 16, interval 3), five
//! algorithms (Random, Best-effort, GTP, HAT, DP).

use crate::figure::{sweep, FigureResult};
use crate::scenarios::{tree_instance, Scenario};
use tdmd_core::algorithms::Algorithm;
use tdmd_sim::TrialConfig;

/// Sweep values from the paper.
pub const KS: [usize; 6] = [1, 4, 7, 10, 13, 16];

/// Regenerates Fig. 9 at the paper's scenario.
pub fn run(cfg: &TrialConfig) -> FigureResult {
    run_at(cfg, Scenario::tree_default())
}

/// Sweep with an arbitrary base scenario (tests use a reduced one).
pub fn run_at(cfg: &TrialConfig, base: Scenario) -> FigureResult {
    let xs: Vec<f64> = KS.iter().map(|&k| k as f64).collect();
    sweep(
        "fig09",
        "middlebox number constraint k in tree",
        "k",
        &xs,
        &Algorithm::tree_suite(),
        cfg,
        |rng, x| {
            tree_instance(
                rng,
                Scenario {
                    k: x as usize,
                    ..base
                },
            )
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::quick_protocol;

    #[test]
    fn bandwidth_decreases_with_k_and_dp_wins() {
        let base = Scenario {
            size: 10,
            density: 0.3,
            ..Scenario::tree_default()
        };
        let fig = run_at(&quick_protocol(), base);
        assert_eq!(fig.series.len(), 5);
        let dp = fig.series_of("DP").unwrap();
        // Monotone non-increasing in k for the optimal algorithm.
        for w in dp.points.windows(2) {
            assert!(
                w[1].bandwidth <= w[0].bandwidth + 1e-6,
                "DP not monotone in k"
            );
        }
        // DP lower-bounds every other algorithm pointwise.
        for s in &fig.series {
            for (p, q) in s.points.iter().zip(&dp.points) {
                assert!(q.bandwidth <= p.bandwidth + 1e-6, "{} beat DP", s.algorithm);
            }
        }
    }
}
