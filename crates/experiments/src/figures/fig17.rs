//! Fig. 17 — spam filters (`λ = 0`): total bandwidth consumption of
//! GTP over the `(k, flow density)` grid, on the tree (a) and general
//! (b) topologies. The paper renders 3-D surfaces; we emit one series
//! per `k` with density on the x-axis, which carries the same data.

use crate::figure::{sweep, FigureResult};
use crate::scenarios::{general_instance, tree_instance, Scenario};
use tdmd_core::algorithms::Algorithm;
use tdmd_sim::TrialConfig;

/// Density axis shared by both panels.
pub fn densities() -> Vec<f64> {
    (4..=8).map(|i| i as f64 / 10.0).collect()
}

/// `k` axis for the tree panel (Fig. 17a: k from 5 to 15).
pub const TREE_KS: [usize; 3] = [5, 10, 15];
/// `k` axis for the general panel (Fig. 17b: k from 6 to 16).
pub const GENERAL_KS: [usize; 3] = [6, 11, 16];

fn grid<F>(name: &str, title: &str, ks: &[usize], cfg: &TrialConfig, make: F) -> FigureResult
where
    F: Fn(&mut rand::rngs::StdRng, f64, usize) -> tdmd_core::Instance + Sync,
{
    let mut out = FigureResult {
        name: name.to_string(),
        title: title.to_string(),
        x_label: "density".to_string(),
        series: Vec::new(),
    };
    for &k in ks {
        let fig = sweep(
            name,
            title,
            "density",
            &densities(),
            &[Algorithm::Gtp],
            cfg,
            |rng, x| make(rng, x, k),
        );
        let mut s = fig.series.into_iter().next().expect("one algorithm");
        s.algorithm = format!("GTP k={k}");
        out.series.push(s);
    }
    out
}

/// Fig. 17(a): spam filters on the tree.
pub fn run_tree(cfg: &TrialConfig) -> FigureResult {
    run_tree_at(
        cfg,
        Scenario {
            lambda: 0.0,
            ..Scenario::tree_default()
        },
    )
}

/// Tree panel with an arbitrary base scenario (λ forced to 0).
pub fn run_tree_at(cfg: &TrialConfig, base: Scenario) -> FigureResult {
    grid(
        "fig17a",
        "spam filters in tree (lambda = 0)",
        &TREE_KS,
        cfg,
        |rng, d, k| {
            tree_instance(
                rng,
                Scenario {
                    lambda: 0.0,
                    density: d,
                    k,
                    ..base
                },
            )
        },
    )
}

/// Fig. 17(b): spam filters on the general topology.
pub fn run_general(cfg: &TrialConfig) -> FigureResult {
    run_general_at(
        cfg,
        Scenario {
            lambda: 0.0,
            ..Scenario::general_default()
        },
    )
}

/// General panel with an arbitrary base scenario (λ forced to 0).
pub fn run_general_at(cfg: &TrialConfig, base: Scenario) -> FigureResult {
    grid(
        "fig17b",
        "spam filters in general topology (lambda = 0)",
        &GENERAL_KS,
        cfg,
        |rng, d, k| {
            general_instance(
                rng,
                Scenario {
                    lambda: 0.0,
                    density: d,
                    k,
                    ..base
                },
            )
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::quick_protocol;

    #[test]
    fn density_dominates_k_on_the_tree_grid() {
        let base = Scenario {
            size: 12,
            lambda: 0.0,
            ..Scenario::tree_default()
        };
        let fig = run_tree_at(&quick_protocol(), base);
        assert_eq!(fig.series.len(), TREE_KS.len());
        // Along each k-line bandwidth rises with density...
        for s in &fig.series {
            let first = s.points.first().unwrap().bandwidth;
            let last = s.points.last().unwrap().bandwidth;
            assert!(last >= first, "{}", s.algorithm);
        }
        // ... and more k at fixed density never hurts.
        for i in 0..densities().len() {
            let hi_k = fig.series.last().unwrap().points[i].bandwidth;
            let lo_k = fig.series.first().unwrap().points[i].bandwidth;
            assert!(
                hi_k <= lo_k + 1e-6,
                "k=15 should beat k=5 at density index {i}"
            );
        }
    }
}
