//! Fig. 12 — tree topology: both metrics vs the topology size (12 to
//! 32, interval 4), five algorithms.

use crate::figure::{sweep, FigureResult};
use crate::scenarios::{tree_instance, Scenario};
use tdmd_core::algorithms::Algorithm;
use tdmd_sim::TrialConfig;

/// Size sweep from the paper.
pub const SIZES: [usize; 6] = [12, 16, 20, 24, 28, 32];

/// Regenerates Fig. 12 at the paper's scenario.
pub fn run(cfg: &TrialConfig) -> FigureResult {
    run_at(cfg, Scenario::tree_default())
}

/// Sweep with an arbitrary base scenario.
pub fn run_at(cfg: &TrialConfig, base: Scenario) -> FigureResult {
    let xs: Vec<f64> = SIZES.iter().map(|&s| s as f64).collect();
    sweep(
        "fig12",
        "topology size in tree",
        "size",
        &xs,
        &Algorithm::tree_suite(),
        cfg,
        |rng, x| {
            tree_instance(
                rng,
                Scenario {
                    size: x as usize,
                    ..base
                },
            )
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::quick_protocol;

    #[test]
    fn bigger_topologies_consume_more() {
        // Reduced sizes still show the trend; density fixed means the
        // load scales with the link count.
        let base = Scenario {
            density: 0.3,
            k: 4,
            ..Scenario::tree_default()
        };
        let mut cfg = quick_protocol();
        cfg.trials = 1;
        let fig = run_at(&cfg, base);
        let hat = fig.series_of("HAT").unwrap();
        let first = hat.points.first().unwrap().bandwidth;
        let last = hat.points.last().unwrap().bandwidth;
        assert!(
            last > first,
            "size 32 ({last}) should cost more than size 12 ({first})"
        );
    }
}
