//! Fig. 15 — general topology: both metrics vs the flow density (0.3
//! to 0.8, interval 0.1), three algorithms.

use crate::figure::{sweep, FigureResult};
use crate::figures::fig11::densities;
use crate::scenarios::{general_instance, Scenario};
use tdmd_core::algorithms::Algorithm;
use tdmd_sim::TrialConfig;

/// Regenerates Fig. 15 at the paper's scenario.
pub fn run(cfg: &TrialConfig) -> FigureResult {
    run_at(cfg, Scenario::general_default())
}

/// Sweep with an arbitrary base scenario.
pub fn run_at(cfg: &TrialConfig, base: Scenario) -> FigureResult {
    sweep(
        "fig15",
        "flow density in a general topology",
        "density",
        &densities(),
        &Algorithm::general_suite(),
        cfg,
        |rng, x| general_instance(rng, Scenario { density: x, ..base }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::quick_protocol;

    #[test]
    fn density_scales_all_lines() {
        let base = Scenario {
            size: 16,
            k: 8,
            ..Scenario::general_default()
        };
        let fig = run_at(&quick_protocol(), base);
        for s in &fig.series {
            let first = s.points.first().unwrap().bandwidth;
            let last = s.points.last().unwrap().bandwidth;
            assert!(last > first, "{}: {last} !> {first}", s.algorithm);
        }
    }
}
