//! One module per evaluation figure (§6.3–6.5).
//!
//! Every module exposes `run(cfg) -> FigureResult` (Fig. 17:
//! `run_tree` / `run_general`, one grid each). The sweep ranges and
//! defaults are the paper's; see DESIGN.md's experiment index.

pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;

use tdmd_sim::TrialConfig;

/// The default evaluation protocol: 5 seeded trials per point,
/// sequential (so execution times are honest).
pub fn default_protocol() -> TrialConfig {
    TrialConfig {
        trials: 5,
        seed: 0x7D_D0,
        resample_limit: 25,
        parallel: false,
    }
}

/// Reduced protocol for smoke tests and `--quick` runs.
pub fn quick_protocol() -> TrialConfig {
    TrialConfig {
        trials: 2,
        seed: 0x7D_D0,
        resample_limit: 10,
        parallel: false,
    }
}
