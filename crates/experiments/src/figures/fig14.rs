//! Fig. 14 — general topology: both metrics vs the traffic-changing
//! ratio `λ` (0 to 0.9, interval 0.1), three algorithms.

use crate::figure::{sweep, FigureResult};
use crate::figures::fig10::lambdas;
use crate::scenarios::{general_instance, Scenario};
use tdmd_core::algorithms::Algorithm;
use tdmd_sim::TrialConfig;

/// Regenerates Fig. 14 at the paper's scenario.
pub fn run(cfg: &TrialConfig) -> FigureResult {
    run_at(cfg, Scenario::general_default())
}

/// Sweep with an arbitrary base scenario.
pub fn run_at(cfg: &TrialConfig, base: Scenario) -> FigureResult {
    sweep(
        "fig14",
        "traffic-changing ratio in a general topology",
        "lambda",
        &lambdas(),
        &Algorithm::general_suite(),
        cfg,
        |rng, x| general_instance(rng, Scenario { lambda: x, ..base }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::quick_protocol;

    #[test]
    fn lambda_one_erases_algorithm_differences() {
        let base = Scenario {
            size: 16,
            density: 0.3,
            k: 8,
            ..Scenario::general_default()
        };
        let fig = run_at(&quick_protocol(), base);
        // At λ = 0.9 (last point) the spread between algorithms is far
        // smaller than at λ = 0 in absolute saved bandwidth.
        let spread = |i: usize| {
            let bs: Vec<f64> = fig.series.iter().map(|s| s.points[i].bandwidth).collect();
            bs.iter().cloned().fold(f64::MIN, f64::max)
                - bs.iter().cloned().fold(f64::MAX, f64::min)
        };
        let early = spread(0);
        let late = spread(fig.series[0].points.len() - 1);
        assert!(
            late <= early + 1e-6,
            "spread should shrink as λ → 1 ({early} vs {late})"
        );
    }
}
