//! Instance families matching the paper's simulation setting (§6.1–6.2).
//!
//! Defaults: tree topology size 22 with budget `k = 8`; general
//! topology size 30 with `k = 10`; traffic-changing ratio `λ = 0.5`;
//! flow density 0.5; CAIDA-like flow rates; tree destinations at the
//! root, general destinations on designated "red" vertices.

use rand::rngs::StdRng;
use rand::Rng;
use tdmd_core::Instance;
use tdmd_graph::generators::ark::ark_like;
use tdmd_graph::generators::trees::random_tree;
use tdmd_graph::{NodeId, RootedTree};
use tdmd_traffic::{general_workload, general_workload_pathsets, tree_workload, WorkloadConfig};

/// Parameters of one experiment point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// Topology size (vertex count).
    pub size: usize,
    /// Flow density target.
    pub density: f64,
    /// Traffic-changing ratio λ.
    pub lambda: f64,
    /// Middlebox budget k.
    pub k: usize,
}

impl Scenario {
    /// Paper defaults for the tree topology (§6.2).
    pub fn tree_default() -> Self {
        Self {
            size: 22,
            density: 0.5,
            lambda: 0.5,
            k: 8,
        }
    }

    /// Paper defaults for the general topology (§6.2).
    pub fn general_default() -> Self {
        Self {
            size: 30,
            density: 0.5,
            lambda: 0.5,
            k: 10,
        }
    }
}

/// Number of clusters of the Ark-like general topology.
pub const ARK_CLUSTERS: usize = 5;
/// Number of designated destination ("red") vertices in the general
/// topology.
pub const GENERAL_DESTINATIONS: usize = 3;

/// Builds one random tree instance per the scenario.
pub fn tree_instance(rng: &mut StdRng, s: Scenario) -> Instance {
    let g = random_tree(s.size.max(2), rng);
    let tree = RootedTree::from_digraph(&g, 0).expect("random_tree is a tree");
    let flows = tree_workload(&g, &tree, &WorkloadConfig::with_density(s.density), rng);
    Instance::new(g, flows, s.lambda, s.k).expect("generated tree instance is valid")
}

/// Builds one Ark-like general instance per the scenario. Destinations
/// are a random subset of the backbone gateways (the paper's red
/// nodes).
pub fn general_instance(rng: &mut StdRng, s: Scenario) -> Instance {
    let clusters = ARK_CLUSTERS.min(s.size);
    let g = ark_like(s.size.max(2), clusters, rng);
    let mut dests: Vec<NodeId> = Vec::new();
    let want = GENERAL_DESTINATIONS.min(clusters);
    while dests.len() < want {
        let d = rng.gen_range(0..clusters) as NodeId;
        if !dests.contains(&d) {
            dests.push(d);
        }
    }
    let flows = general_workload(&g, &dests, &WorkloadConfig::with_density(s.density), rng);
    Instance::new(g, flows, s.lambda, s.k).expect("generated general instance is valid")
}

/// Builds one Ark-like general instance whose flows carry `k_paths`
/// candidate routes each (the joint-routing experiment setting): the
/// multipath workload draws each flow's primary among its candidates,
/// then the full candidate set is attached. Every entry of a
/// `k_paths` sweep therefore carries its own fixed-routing baseline
/// (GTP on the drawn primaries) for the joint solver to improve on.
pub fn general_pathset_instance(rng: &mut StdRng, s: Scenario, k_paths: usize) -> Instance {
    let clusters = ARK_CLUSTERS.min(s.size);
    let g = ark_like(s.size.max(2), clusters, rng);
    let mut dests: Vec<NodeId> = Vec::new();
    let want = GENERAL_DESTINATIONS.min(clusters);
    while dests.len() < want {
        let d = rng.gen_range(0..clusters) as NodeId;
        if !dests.contains(&d) {
            dests.push(d);
        }
    }
    let sets = general_workload_pathsets(
        &g,
        &dests,
        &WorkloadConfig::with_density(s.density),
        k_paths,
        rng,
    );
    Instance::with_path_sets(g, sets, s.lambda, s.k).expect("generated pathset instance is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tdmd_traffic::density::flow_density;

    #[test]
    fn tree_instances_hit_defaults() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = Scenario::tree_default();
        let inst = tree_instance(&mut rng, s);
        assert_eq!(inst.node_count(), 22);
        assert_eq!(inst.k(), 8);
        assert_eq!(inst.lambda(), 0.5);
        let d = flow_density(inst.graph(), inst.flows(), 100);
        assert!(d >= 0.5, "density {d}");
    }

    #[test]
    fn general_instances_route_to_red_nodes() {
        let mut rng = StdRng::seed_from_u64(2);
        let inst = general_instance(&mut rng, Scenario::general_default());
        assert_eq!(inst.node_count(), 30);
        for f in inst.flows() {
            assert!(
                (f.dst() as usize) < ARK_CLUSTERS,
                "destinations are gateways"
            );
            assert!(f.path_is_valid(inst.graph()));
        }
    }

    #[test]
    fn scenarios_are_deterministic() {
        let s = Scenario::tree_default();
        let a = tree_instance(&mut StdRng::seed_from_u64(5), s);
        let b = tree_instance(&mut StdRng::seed_from_u64(5), s);
        assert_eq!(a.flows(), b.flows());
    }

    #[test]
    fn tiny_sizes_are_clamped_sanely() {
        let mut rng = StdRng::seed_from_u64(9);
        let s = Scenario {
            size: 2,
            density: 0.3,
            lambda: 0.5,
            k: 1,
        };
        let inst = tree_instance(&mut rng, s);
        assert_eq!(inst.node_count(), 2);
    }
}
