//! # tdmd-experiments — regenerates the paper's evaluation
//!
//! One module per figure of §6 (Figs. 9–17) plus the worked examples
//! (Fig. 1 / Table 2 and the Fig. 5–7 DP tables live in the
//! `examples/` binaries). Each figure module builds the paper's
//! instance family, sweeps its independent variable over the paper's
//! range, and returns a [`figure::FigureResult`] with the two metric
//! panels (bandwidth consumption, execution time) per algorithm.
//!
//! Run `cargo run -p tdmd-experiments --release -- all` to print every
//! figure and drop CSVs under `results/`.
//!
//! * [`figure`] — the [`FigureResult`] / [`Series`] result model and
//!   CSV rendering.
//! * [`figures`] — one module per paper figure (Figs. 9–17).
//! * [`scenarios`] — the shared instance families the figures sweep.
//! * [`extras`] — beyond-the-paper sweeps (oracle gap, λ extremes).
//! * [`svg`] — dependency-free SVG plotting of a figure's panels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extras;
pub mod figure;
pub mod figures;
pub mod scenarios;
pub mod svg;

pub use figure::{FigureResult, Series, SweepPoint};
