//! Regenerates the golden snapshot used by the determinism regression
//! test (`tests/determinism.rs` in the facade crate). Run from the
//! repo root after an intentional behaviour change:
//!
//! ```sh
//! cargo run -p tdmd-experiments --bin gen_golden
//! ```

use tdmd_experiments::figures::{fig09, quick_protocol};
use tdmd_experiments::scenarios::Scenario;

fn main() {
    if let Err(e) = run() {
        eprintln!("gen_golden: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let base = Scenario {
        size: 12,
        density: 0.4,
        k: 4,
        ..Scenario::tree_default()
    };
    let fig = fig09::run_at(&quick_protocol(), base);
    // Bandwidths only: execution times are machine-dependent.
    let snapshot: Vec<(String, Vec<f64>)> = fig
        .series
        .iter()
        .map(|s| {
            (
                s.algorithm.clone(),
                s.points.iter().map(|p| p.bandwidth).collect(),
            )
        })
        .collect();
    let json = serde_json::to_string_pretty(&snapshot).map_err(|e| e.to_string())?;
    let path = "tests/golden/fig09_quick.json";
    std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}
