//! CLI that regenerates the paper's figures.
//!
//! ```text
//! tdmd-experiments [--quick] [--out DIR] <fig9|fig10|...|fig17|all>...
//! ```
//!
//! Prints each figure's two panels as text tables and writes
//! `<name>.csv` / `<name>.json` under the output directory.

#![forbid(unsafe_code)]

use std::fs;
use std::path::PathBuf;
use tdmd_experiments::figure::FigureResult;
use tdmd_experiments::figures;

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_dir = PathBuf::from("results");
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out_dir = PathBuf::from(it.next().unwrap_or_else(|| {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                }))
            }
            "--help" | "-h" => {
                println!("usage: tdmd-experiments [--quick] [--out DIR] <fig9..fig17|all>...");
                return Ok(());
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        wanted.push("all".to_string());
    }
    let cfg = if quick {
        figures::quick_protocol()
    } else {
        figures::default_protocol()
    };

    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);
    let mut results: Vec<FigureResult> = Vec::new();

    macro_rules! figure {
        ($flag:expr, $runner:expr) => {
            if want($flag) {
                eprintln!("running {} ...", $flag);
                results.push($runner);
            }
        };
    }
    figure!("fig9", figures::fig09::run(&cfg));
    figure!("fig10", figures::fig10::run(&cfg));
    figure!("fig11", figures::fig11::run(&cfg));
    figure!("fig12", figures::fig12::run(&cfg));
    figure!("fig13", figures::fig13::run(&cfg));
    figure!("fig14", figures::fig14::run(&cfg));
    figure!("fig15", figures::fig15::run(&cfg));
    figure!("fig16", figures::fig16::run(&cfg));
    if want("fig17") {
        eprintln!("running fig17 ...");
        results.push(figures::fig17::run_tree(&cfg));
        results.push(figures::fig17::run_general(&cfg));
    }
    let mut extra_results = Vec::new();
    if want("extras") {
        eprintln!("running extension experiments ...");
        let trials = if quick { 3 } else { 10 };
        extra_results.push(tdmd_experiments::extras::optimality_gap(trials, cfg.seed));
        extra_results.push(tdmd_experiments::extras::feasibility_rate(trials, cfg.seed));
        extra_results.push(tdmd_experiments::extras::dynamic_replanning(cfg.seed));
        extra_results.push(tdmd_experiments::extras::gtp_variant_speedup(cfg.seed));
        extra_results.push(tdmd_experiments::extras::chain_budget_sweep(cfg.seed));
        extra_results.push(tdmd_experiments::extras::capacity_sweep(cfg.seed));
    }

    if results.is_empty() && extra_results.is_empty() {
        eprintln!("nothing matched; valid names: fig9..fig17, extras, all");
        std::process::exit(2);
    }
    let io = |e: std::io::Error| format!("{}: {e}", out_dir.display());
    fs::create_dir_all(&out_dir).map_err(io)?;
    for fig in &results {
        println!("{}", fig.render());
        fs::write(out_dir.join(format!("{}.csv", fig.name)), fig.to_csv()).map_err(io)?;
        let json = serde_json::to_string_pretty(fig)
            .map_err(|e| format!("serializing {}: {e}", fig.name))?;
        fs::write(out_dir.join(format!("{}.json", fig.name)), json).map_err(io)?;
        for (panel, suffix) in [
            (tdmd_experiments::svg::Panel::Bandwidth, "bandwidth"),
            (tdmd_experiments::svg::Panel::TimeMs, "time"),
        ] {
            fs::write(
                out_dir.join(format!("{}_{suffix}.svg", fig.name)),
                tdmd_experiments::svg::render_svg(fig, panel),
            )
            .map_err(io)?;
        }
    }
    for ex in &extra_results {
        println!("{}", ex.text);
        fs::write(out_dir.join(format!("{}.csv", ex.name)), &ex.csv).map_err(io)?;
    }
    eprintln!(
        "wrote {} figure file pairs and {} extra reports to {}",
        results.len(),
        extra_results.len(),
        out_dir.display()
    );
    Ok(())
}
