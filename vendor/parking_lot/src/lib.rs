//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps the std synchronization primitives behind parking_lot's
//! poison-free API (lock methods return guards directly instead of
//! `Result`s). Performance characteristics are std's, not
//! parking_lot's.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock; `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader–writer lock; methods never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
        let rw = RwLock::new(String::from("a"));
        rw.write().push('b');
        assert_eq!(&*rw.read(), "ab");
    }
}
