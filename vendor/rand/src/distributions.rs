//! Distribution traits and the `Standard` distribution.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform distribution over a type's natural domain: all values for
/// integers and `bool`, the half-open unit interval for floats.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod uniform {
    //! Range sampling used by `Rng::gen_range`.

    use crate::RngCore;
    use core::ops::{Range, RangeInclusive};

    /// A range that `Rng::gen_range` can sample from.
    pub trait SampleRange<T> {
        /// Draws one uniform sample from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Maps a uniform 64-bit word onto `[0, n)` by widening multiply.
    #[inline]
    fn mul_shift(word: u64, n: u64) -> u64 {
        ((word as u128 * n as u128) >> 64) as u64
    }

    macro_rules! int_range {
        ($($t:ty => $u:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as $u).wrapping_sub(self.start as $u);
                    self.start.wrapping_add(mul_shift(rng.next_u64(), span as u64) as $t)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1);
                    if span == 0 {
                        // Inclusive range covering the full integer domain.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(mul_shift(rng.next_u64(), span as u64) as $t)
                }
            }
        )*};
    }
    int_range!(
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => u64,
        i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => u64
    );

    macro_rules! float_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                    self.start + unit * (self.end - self.start)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                    lo + unit * (hi - lo)
                }
            }
        )*};
    }
    float_range!(f32, f64);
}
