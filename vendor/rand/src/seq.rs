//! Sequence helpers: random element choice and Fisher–Yates shuffle.

use crate::Rng;

/// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Uniformly random element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// In-place uniform permutation (Fisher–Yates, back to front).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}
