//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no registry access,
//! so the workspace vendors a small, self-contained implementation of
//! the `rand` 0.8 API surface it actually uses: [`rngs::StdRng`]
//! (xoshiro256++ seeded through SplitMix64), the [`Rng`] / [`RngCore`]
//! / [`SeedableRng`] traits, uniform range sampling, and the slice
//! helpers in [`seq`]. Streams are fully deterministic for a given
//! seed but are *not* bit-compatible with upstream `rand`; golden
//! fixtures in this repository are generated against this
//! implementation.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub mod prelude {
    //! Convenience re-exports mirroring `rand::prelude`.
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value whose type implements the [`distributions::Standard`]
    /// distribution (uniform over the type's natural domain).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        // Compare in the 53-bit integer domain so p = 0 and p = 1 are exact.
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }

    /// Fills a byte slice with random data (subset of `Rng::fill`).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Expands a 64-bit seed into the generator state.
    fn seed_from_u64(state: u64) -> Self;

    /// Stand-in for OS entropy: a fixed-seed generator. The offline
    /// build intentionally keeps every run reproducible.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x853c_49e6_748f_ea9b)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17u64);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5..=5usize);
            assert_eq!(y, 5);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes_are_exact() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
