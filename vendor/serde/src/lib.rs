//! Offline stand-in for the `serde` crate.
//!
//! The real serde streams values through `Serializer` / `Deserializer`
//! visitors; the only data format this workspace uses is JSON via
//! `serde_json`, so this vendored subset collapses the data model to a
//! concrete [`Value`] tree. [`Serialize`] renders a value into the
//! tree and [`Deserialize`] rebuilds one from it; `serde_json` maps
//! the tree to and from text. The `derive` feature re-exports
//! `#[derive(Serialize, Deserialize)]` from the vendored
//! `serde_derive`, which supports the shapes this workspace declares:
//! non-generic named-field structs and enums with unit, newtype,
//! tuple, and struct variants (externally tagged), plus
//! `#[serde(default)]` on fields.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// Self-describing data-model tree: the rendezvous point between
/// typed values and data formats.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Negative integers (and any in-range signed value).
    Int(i64),
    /// Non-negative integers; kept apart from [`Value::Int`] so the
    /// full `u64` range round-trips exactly.
    UInt(u64),
    /// Floating-point numbers.
    Float(f64),
    /// Strings.
    Str(String),
    /// Ordered sequences.
    Seq(Vec<Value>),
    /// Key–value maps in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrows the sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Borrows the string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Interprets a single-entry map as an externally tagged enum
    /// variant: `(tag, payload)`.
    pub fn as_variant(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Map(entries) if entries.len() == 1 => {
                Some((entries[0].0.as_str(), &entries[0].1))
            }
            _ => None,
        }
    }

    /// One-word description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Deserialization error: a human-readable message with the offending
/// context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Free-form error.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// `expected` a kind while deserializing `target`, found `value`.
    pub fn invalid_type(target: &str, expected: &str, value: &Value) -> Self {
        Self::custom(format!(
            "invalid type for {target}: expected {expected}, found {}",
            value.kind()
        ))
    }

    /// A required map key was absent.
    pub fn missing_field(field: &str) -> Self {
        Self::custom(format!("missing field `{field}`"))
    }

    /// An enum tag matched no declared variant.
    pub fn unknown_variant(tag: &str, target: &str) -> Self {
        Self::custom(format!("unknown variant `{tag}` for {target}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into the [`Value`] data model.
pub trait Serialize {
    /// Converts to a value tree.
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Converts from a value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// Value to use when a struct field is absent entirely; `None`
    /// means absence is an error. `Option<T>` overrides this so
    /// missing optional fields deserialize as `None`, as in real
    /// serde.
    fn from_missing() -> Option<Self> {
        None
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match *value {
                    Value::UInt(u) => u,
                    Value::Int(i) if i >= 0 => i as u64,
                    _ => return Err(Error::invalid_type(stringify!($t), "unsigned integer", value)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide = match *value {
                    Value::Int(i) => i,
                    Value::UInt(u) => i64::try_from(u)
                        .map_err(|_| Error::custom(format!("{u} out of range for {}", stringify!($t))))?,
                    _ => return Err(Error::invalid_type(stringify!($t), "integer", value)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize);

macro_rules! serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match *value {
                    Value::Float(f) => Ok(f as $t),
                    Value::Int(i) => Ok(i as $t),
                    Value::UInt(u) => Ok(u as $t),
                    // JSON cannot carry non-finite numbers; they are
                    // serialized as null and round back to NaN.
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::invalid_type(stringify!($t), "number", value)),
                }
            }
        }
    )*};
}
serialize_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match *value {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::invalid_type("bool", "bool", value)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::invalid_type("String", "string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::invalid_type("Vec", "sequence", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing() -> Option<Self> {
        Some(None)
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident : $index:tt),+) of $len:literal;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$index.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let seq = value
                    .as_seq()
                    .ok_or_else(|| Error::invalid_type("tuple", "sequence", value))?;
                if seq.len() != $len {
                    return Err(Error::custom(format!(
                        "expected a sequence of {} elements, found {}",
                        $len,
                        seq.len()
                    )));
                }
                Ok(($($name::from_value(&seq[$index])?,)+))
            }
        }
    )*};
}
serialize_tuple! {
    (A: 0) of 1;
    (A: 0, B: 1) of 2;
    (A: 0, B: 1, C: 2) of 3;
    (A: 0, B: 1, C: 2, D: 3) of 4;
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::invalid_type("BTreeMap", "map", value))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic key order keeps serialized output stable.
        let mut entries: Vec<_> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::invalid_type("HashMap", "map", value))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

pub mod __private {
    //! Support functions referenced by `serde_derive`-generated code.
    //! Not part of the public API.

    use super::{Deserialize, Error, Serialize, Value};

    /// Looks up a struct field by key; absent keys fall back to
    /// [`Deserialize::from_missing`].
    pub fn field<T: Deserialize>(map: &[(String, Value)], key: &str) -> Result<T, Error> {
        match map.iter().find(|(k, _)| k == key) {
            Some((_, v)) => T::from_value(v),
            None => T::from_missing().ok_or_else(|| Error::missing_field(key)),
        }
    }

    /// Looks up a `#[serde(default)]` struct field by key.
    pub fn field_or_default<T: Deserialize + Default>(
        map: &[(String, Value)],
        key: &str,
    ) -> Result<T, Error> {
        match map.iter().find(|(k, _)| k == key) {
            Some((_, v)) => T::from_value(v),
            None => Ok(T::default()),
        }
    }

    /// Builds an externally tagged enum payload.
    pub fn variant(tag: &str, payload: Value) -> Value {
        Value::Map(vec![(tag.to_owned(), payload)])
    }

    /// Serializes one value (function form, handy in generated code).
    pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
        value.to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_round_trip_across_kinds() {
        assert_eq!(u32::from_value(&Value::UInt(7)).unwrap(), 7);
        assert_eq!(u32::from_value(&Value::Int(7)).unwrap(), 7);
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert_eq!(i64::from_value(&Value::UInt(9)).unwrap(), 9);
    }

    #[test]
    fn option_fields_accept_null_and_absence() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_missing(), Some(None));
        assert_eq!(u32::from_missing(), None);
    }

    #[test]
    fn tuples_are_sequences() {
        let v = (3u32, 4u64).to_value();
        assert_eq!(v, Value::Seq(vec![Value::UInt(3), Value::UInt(4)]));
        let back: (u32, u64) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, (3, 4));
    }
}
