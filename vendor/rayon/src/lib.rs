//! Offline stand-in for the `rayon` crate.
//!
//! Exposes the parallel-iterator entry points this workspace calls
//! (`par_iter`, `into_par_iter`, `reduce_with`, plus everything the
//! standard [`Iterator`] trait already provides) but executes them
//! sequentially on the calling thread. Algorithms keep their exact
//! semantics — "parallel" variants produce identical results to their
//! eager counterparts — only the speedup is absent until a real rayon
//! can be resolved.

pub mod prelude {
    //! Drop-in replacement for `rayon::prelude`.

    /// Sequential stand-in for `rayon::iter::ParallelIterator`:
    /// anything iterable gains the rayon-specific combinators; the
    /// rest (`map`, `filter_map`, `collect`, ...) come from
    /// [`Iterator`] itself.
    pub trait ParallelIterator: Iterator + Sized {
        /// Folds the items pairwise with `op`, returning `None` on an
        /// empty iterator (mirrors rayon's `reduce_with`).
        fn reduce_with<F>(mut self, mut op: F) -> Option<Self::Item>
        where
            F: FnMut(Self::Item, Self::Item) -> Self::Item,
        {
            let first = self.next()?;
            Some(self.fold(first, &mut op))
        }

        /// Hint only; sequential execution ignores chunking.
        fn with_min_len(self, _min: usize) -> Self {
            self
        }

        /// Hint only; sequential execution ignores chunking.
        fn with_max_len(self, _max: usize) -> Self {
            self
        }
    }

    impl<I: Iterator> ParallelIterator for I {}

    /// By-value conversion into a "parallel" iterator.
    pub trait IntoParallelIterator {
        /// Iterator produced by the conversion.
        type Iter: Iterator<Item = Self::Item>;
        /// Item type.
        type Item;
        /// Converts `self`; here simply `into_iter`.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// By-reference conversion into a "parallel" iterator.
    pub trait IntoParallelRefIterator<'data> {
        /// Iterator produced by the conversion.
        type Iter: Iterator<Item = Self::Item>;
        /// Item type (shared references into `self`).
        type Item: 'data;
        /// Converts `&self`; here simply `iter`.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
        <&'data C as IntoIterator>::Item: 'data,
    {
        type Iter = <&'data C as IntoIterator>::IntoIter;
        type Item = <&'data C as IntoIterator>::Item;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// By-mutable-reference conversion into a "parallel" iterator.
    pub trait IntoParallelRefMutIterator<'data> {
        /// Iterator produced by the conversion.
        type Iter: Iterator<Item = Self::Item>;
        /// Item type (mutable references into `self`).
        type Item: 'data;
        /// Converts `&mut self`; here simply `iter_mut`.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, C: ?Sized + 'data> IntoParallelRefMutIterator<'data> for C
    where
        &'data mut C: IntoIterator,
        <&'data mut C as IntoIterator>::Item: 'data,
    {
        type Iter = <&'data mut C as IntoIterator>::IntoIter;
        type Item = <&'data mut C as IntoIterator>::Item;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Sequential stand-in for `rayon::slice::ParallelSlice`: exposes
    /// `par_chunks`, which a real rayon services with one task per
    /// chunk; here it is plain [`slice::chunks`](slice::chunks), which
    /// visits the chunks in order — the stricter of the two contracts,
    /// so callers relying on rayon's indexed collect keep their
    /// ordering guarantees.
    pub trait ParallelSlice<T: Sync> {
        /// Iterator over `chunk_size`-element chunks (last may be
        /// shorter). `chunk_size` must be non-zero.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }
}

/// Runs both closures (sequentially here) and returns their results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Number of "worker threads"; one, since execution is sequential.
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_sequential() {
        let v = vec![3u64, 1, 4, 1, 5];
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 8, 2, 10]);
        let max = v.par_iter().copied().reduce_with(u64::max);
        assert_eq!(max, Some(5));
        let empty: Option<u64> = Vec::<u64>::new().into_par_iter().reduce_with(u64::max);
        assert_eq!(empty, None);
    }

    #[test]
    fn range_into_par_iter_collects() {
        let squares: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn par_chunks_visits_chunks_in_order() {
        let v = vec![1u32, 2, 3, 4, 5];
        let sums: Vec<u32> = v.par_chunks(2).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3, 7, 5], "ordered chunks, short tail last");
    }
}
