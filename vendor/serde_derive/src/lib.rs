//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The registry (and therefore `syn`/`quote`) is unavailable in this
//! build environment, so the derive walks the raw
//! [`proc_macro::TokenStream`] itself. It supports exactly the shapes
//! this workspace declares:
//!
//! * non-generic structs with named fields, and
//! * non-generic enums with unit, newtype, tuple, and struct variants
//!   (externally tagged, like real serde's default), plus
//! * the `#[serde(default)]` field attribute.
//!
//! Anything else (generics, tuple structs, other serde attributes)
//! panics at expansion time with a message naming the limitation, so
//! unsupported shapes fail loudly at compile time rather than
//! serializing wrongly.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item.body {
        Body::Struct(fields) => serialize_struct(&item.name, fields),
        Body::Enum(variants) => serialize_enum(&item.name, variants),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item.body {
        Body::Struct(fields) => deserialize_struct(&item.name, fields),
        Body::Enum(variants) => deserialize_enum(&item.name, variants),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

struct Item {
    name: String,
    body: Body,
}

enum Body {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// Marked `#[serde(default)]`.
    default: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<Field>),
}

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Consumes leading `#[...]` attributes; returns whether any of them
/// was `#[serde(default)]`.
fn skip_attributes(tokens: &mut Tokens) -> bool {
    let mut has_default = false;
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next();
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                if let Some(arg) = parse_serde_attribute(g.stream()) {
                    match arg.as_str() {
                        "default" => has_default = true,
                        other => panic!(
                            "vendored serde_derive does not support #[serde({other})]; \
                             only #[serde(default)] is implemented"
                        ),
                    }
                }
            }
            other => panic!("malformed attribute: expected [...], found {other:?}"),
        }
    }
    has_default
}

/// If the bracket content is `serde(...)`, returns the inner tokens as
/// a string (e.g. `"default"`).
fn parse_serde_attribute(stream: TokenStream) -> Option<String> {
    let mut it = stream.into_iter();
    match it.next() {
        Some(TokenTree::Ident(ident)) if ident.to_string() == "serde" => {}
        _ => return None,
    }
    match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Some(g.stream().to_string().trim().to_owned())
        }
        _ => None,
    }
}

/// Consumes an optional `pub` / `pub(crate)` / `pub(in ...)`.
fn skip_visibility(tokens: &mut Tokens) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

fn expect_ident(tokens: &mut Tokens, context: &str) -> String {
    match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("expected identifier ({context}), found {other:?}"),
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);
    let keyword = expect_ident(&mut tokens, "struct or enum keyword");
    let name = expect_ident(&mut tokens, "type name");
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic type `{name}`");
    }
    let group = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            panic!("vendored serde_derive does not support tuple struct `{name}`")
        }
        other => panic!("expected {{...}} body for `{name}`, found {other:?}"),
    };
    let body = match keyword.as_str() {
        "struct" => Body::Struct(parse_fields(group.stream())),
        "enum" => Body::Enum(parse_variants(group.stream())),
        other => panic!("expected struct or enum, found `{other}`"),
    };
    Item { name, body }
}

/// Parses `name: Type, ...` named fields, honouring attributes and
/// skipping type tokens (tracking `<`/`>` depth so commas inside
/// generic arguments do not split fields).
fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    while tokens.peek().is_some() {
        let default = skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        let name = expect_ident(&mut tokens, "field name");
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        let mut angle_depth = 0i32;
        for tt in tokens.by_ref() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(Field { name, default });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    while tokens.peek().is_some() {
        skip_attributes(&mut tokens);
        let name = expect_ident(&mut tokens, "variant name");
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_types(g.stream());
                tokens.next();
                if arity == 1 {
                    VariantKind::Newtype
                } else {
                    VariantKind::Tuple(arity)
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream());
                tokens.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            tokens.next();
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// Number of comma-separated types at angle-depth zero (tuple-variant
/// arity).
fn count_top_level_types(stream: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut count = 0usize;
    let mut saw_any = false;
    for tt in stream {
        saw_any = true;
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => {}
        }
    }
    if saw_any {
        count + 1
    } else {
        0
    }
}

fn serialize_struct(name: &str, fields: &[Field]) -> String {
    let mut pushes = String::new();
    for f in fields {
        pushes.push_str(&format!(
            "__entries.push((::std::string::String::from(\"{0}\"), \
             ::serde::__private::to_value(&self.{0})));\n",
            f.name
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut __entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> =\n\
                     ::std::vec::Vec::with_capacity({len});\n\
                 {pushes}\
                 ::serde::Value::Map(__entries)\n\
             }}\n\
         }}\n",
        len = fields.len(),
    )
}

fn deserialize_struct_body(name: &str, path: &str, fields: &[Field], source: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        let getter = if f.default {
            "field_or_default"
        } else {
            "field"
        };
        inits.push_str(&format!(
            "{0}: ::serde::__private::{getter}({source}, \"{0}\")?,\n",
            f.name
        ));
    }
    format!(
        "::std::result::Result::Ok({path} {{\n{inits}}})",
        path = if path.is_empty() { name } else { path },
    )
}

fn deserialize_struct(name: &str, fields: &[Field]) -> String {
    let body = deserialize_struct_body(name, name, fields, "__map");
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let __map = __value\n\
                     .as_map()\n\
                     .ok_or_else(|| ::serde::Error::invalid_type(\"{name}\", \"map\", __value))?;\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.kind {
            VariantKind::Unit => arms.push_str(&format!(
                "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),\n"
            )),
            VariantKind::Newtype => arms.push_str(&format!(
                "{name}::{vname}(__f0) => ::serde::__private::variant(\"{vname}\", \
                 ::serde::__private::to_value(__f0)),\n"
            )),
            VariantKind::Tuple(arity) => {
                let binders: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                let elems: Vec<String> = binders
                    .iter()
                    .map(|b| format!("::serde::__private::to_value({b})"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vname}({binds}) => ::serde::__private::variant(\"{vname}\", \
                     ::serde::Value::Seq(vec![{elems}])),\n",
                    binds = binders.join(", "),
                    elems = elems.join(", "),
                ));
            }
            VariantKind::Struct(fields) => {
                let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let mut pushes = String::new();
                for f in fields {
                    pushes.push_str(&format!(
                        "(::std::string::String::from(\"{0}\"), ::serde::__private::to_value({0})),\n",
                        f.name
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{vname} {{ {binds} }} => ::serde::__private::variant(\"{vname}\", \
                     ::serde::Value::Map(vec![{pushes}])),\n",
                    binds = binders.join(", "),
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
             }}\n\
         }}\n"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.kind {
            VariantKind::Unit => unit_arms.push_str(&format!(
                "\"{vname}\" => return ::std::result::Result::Ok({name}::{vname}),\n"
            )),
            VariantKind::Newtype => tagged_arms.push_str(&format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                 ::serde::Deserialize::from_value(__payload)?)),\n"
            )),
            VariantKind::Tuple(arity) => {
                let elems: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                    .collect();
                tagged_arms.push_str(&format!(
                    "\"{vname}\" => {{\n\
                         let __seq = __payload\n\
                             .as_seq()\n\
                             .ok_or_else(|| ::serde::Error::invalid_type(\"{name}::{vname}\", \"sequence\", __payload))?;\n\
                         if __seq.len() != {arity} {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\n\
                                 format!(\"expected {arity} elements for {name}::{vname}, found {{}}\", __seq.len())));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}::{vname}({elems}))\n\
                     }}\n",
                    elems = elems.join(", "),
                ));
            }
            VariantKind::Struct(fields) => {
                let body =
                    deserialize_struct_body(name, &format!("{name}::{vname}"), fields, "__fields");
                tagged_arms.push_str(&format!(
                    "\"{vname}\" => {{\n\
                         let __fields = __payload\n\
                             .as_map()\n\
                             .ok_or_else(|| ::serde::Error::invalid_type(\"{name}::{vname}\", \"map\", __payload))?;\n\
                         {body}\n\
                     }}\n"
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 if let ::serde::Value::Str(__s) = __value {{\n\
                     match __s.as_str() {{\n{unit_arms}_ => {{}}\n}}\n\
                 }}\n\
                 let (__tag, __payload) = __value\n\
                     .as_variant()\n\
                     .ok_or_else(|| ::serde::Error::invalid_type(\"{name}\", \"externally tagged variant\", __value))?;\n\
                 match __tag {{\n\
                     {tagged_arms}\
                     _ => ::std::result::Result::Err(::serde::Error::unknown_variant(__tag, \"{name}\")),\n\
                 }}\n\
             }}\n\
         }}\n"
    )
}
