//! Offline stand-in for the `serde_json` crate.
//!
//! Maps JSON text to and from the vendored `serde` [`Value`] tree: a
//! recursive-descent parser on one side, compact and pretty printers
//! on the other. Covers the full JSON grammar (nested containers,
//! escapes including `\uXXXX` surrogate pairs, scientific notation)
//! with `u64`/`i64` integers kept exact rather than routed through
//! `f64`.

use serde::{Deserialize, Serialize, Value};

/// Parse or conversion error with a byte offset when parsing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
    offset: Option<usize>,
}

impl Error {
    fn parse(message: impl Into<String>, offset: usize) -> Self {
        Self {
            message: message.into(),
            offset: Some(offset),
        }
    }
}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self {
            message: e.to_string(),
            offset: None,
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.offset {
            Some(at) => write!(f, "{} at byte {at}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for Error {}

/// Deserializes a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_whitespace();
    let value = p.value()?;
    p.skip_whitespace();
    if p.pos != p.bytes.len() {
        return Err(Error::parse("trailing characters after JSON value", p.pos));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(
                format!("expected `{}`", char::from(b)),
                self.pos,
            ))
        }
    }

    fn eat_literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::parse("expected a JSON value", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::parse("expected `,` or `}` in object", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::parse("expected `,` or `]` in array", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the longest run without escapes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::parse("invalid UTF-8 in string", start))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(Error::parse("unterminated string", self.pos)),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::parse("unterminated escape", self.pos))?;
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let unit = self.hex4()?;
                let ch = if (0xD800..0xDC00).contains(&unit) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    if !(self.eat_literal("\\u")) {
                        return Err(Error::parse("unpaired surrogate", self.pos));
                    }
                    let low = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&low) {
                        return Err(Error::parse("invalid low surrogate", self.pos));
                    }
                    let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                    char::from_u32(code)
                        .ok_or_else(|| Error::parse("invalid surrogate pair", self.pos))?
                } else {
                    char::from_u32(unit)
                        .ok_or_else(|| Error::parse("invalid \\u escape", self.pos))?
                };
                out.push(ch);
            }
            _ => return Err(Error::parse("unknown escape character", self.pos - 1)),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut unit = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| Error::parse("truncated \\u escape", self.pos))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::parse("non-hex digit in \\u escape", self.pos))?;
            unit = unit * 16 + digit;
            self.pos += 1;
        }
        Ok(unit)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(i) = stripped.parse::<u64>() {
                    if i <= i64::MAX as u64 {
                        return Ok(Value::Int(-(i as i64)));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::parse(format!("invalid number `{text}`"), start))
    }
}

// --------------------------------------------------------------- printer

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_container(out, indent, depth, b'[', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1)
        }),
        Value::Map(entries) => {
            write_container(out, indent, depth, b'{', entries.len(), |out, i| {
                write_string(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, indent, depth + 1)
            })
        }
    }
}

fn write_container(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: u8,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    let close = if open == b'[' { ']' } else { '}' };
    out.push(char::from(open));
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(width * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
    out.push(close);
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; mirror serde_json and emit null.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a decimal point so the value reparses as a float.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<String>(r#""a\nbA""#).unwrap(), "a\nbA");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<u64>(&u64::MAX.to_string()).unwrap(), u64::MAX);
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<(String, Vec<f64>)> = from_str(r#"[["a", [1.0, 2.5]], ["b", []]]"#).unwrap();
        assert_eq!(v[0].0, "a");
        assert_eq!(v[0].1, vec![1.0, 2.5]);
        let text = to_string(&v).unwrap();
        let back: Vec<(String, Vec<f64>)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_reparses() {
        let v = vec![(String::from("x"), vec![1.5f64, -0.25])];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<(String, Vec<f64>)> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_keep_their_floatness() {
        let text = to_string(&3.0f64).unwrap();
        assert_eq!(text, "3.0");
        assert_eq!(from_str::<f64>(&text).unwrap(), 3.0);
    }

    #[test]
    fn malformed_documents_error() {
        assert!(from_str::<u64>("{not json").is_err());
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }
}
