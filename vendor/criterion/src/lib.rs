//! Offline stand-in for the `criterion` crate.
//!
//! Keeps every bench target compiling and executable: benchmark
//! closures are run a handful of times and a single mean wall-clock
//! time is printed per benchmark id. There is no statistical analysis,
//! HTML report, or command-line filtering — when a real criterion can
//! be resolved, swapping this out re-enables all of that without
//! touching the bench sources.

use std::fmt::Display;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// Opaque black box hindering constant folding of benchmark inputs.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark identifier: `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Identifier from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Measurement marker types.
pub mod measurement {
    /// Wall-clock measurement (the only one provided).
    pub struct WallTime;
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iterations: u32,
    mean: Option<Duration>,
}

impl Bencher {
    /// Times `routine` over a fixed small number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warm-up.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.mean = Some(start.elapsed() / self.iterations);
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts and ignores command-line configuration.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Plot generation is not supported here; accepted for API parity.
    pub fn without_plots(self) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            _measurement: PhantomData,
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut bencher = Bencher {
        iterations: 3,
        mean: None,
    };
    f(&mut bencher);
    match bencher.mean {
        Some(mean) => println!("bench {id}: {mean:?}/iter"),
        None => println!("bench {id}: no measurement"),
    }
}

/// Group of benchmarks sharing a name prefix and (ignored) tuning.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    _criterion: &'a mut Criterion,
    name: String,
    _measurement: PhantomData<M>,
}

impl<'a, M> BenchmarkGroup<'a, M> {
    /// Ignored tuning knob (kept for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ignored tuning knob.
    pub fn nresamples(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ignored tuning knob.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Ignored tuning knob.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs >= 4, "warm-up plus measured iterations");
        let mut g = c.benchmark_group("group");
        g.sample_size(10).measurement_time(Duration::from_millis(1));
        g.bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        g.finish();
    }
}
