//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace declares this dependency for future concurrent
//! pipelines but does not call into it yet; this vendored placeholder
//! only has to resolve. `scope` is provided because it is the one
//! crossbeam entry point std can emulate directly.

/// Structured-concurrency scope backed by [`std::thread::scope`].
pub fn scope<'env, F, T>(f: F) -> std::thread::Result<T>
where
    F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
{
    Ok(std::thread::scope(f))
}
