//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace writes: `proptest!` blocks with
//! an optional `#![proptest_config(...)]` header, `arg in strategy`
//! parameter lists over integer/float ranges and `any::<T>()`, and the
//! `prop_assert*` macros. Each test runs `cases` deterministic
//! iterations seeded from the test's module path and name, so failures
//! reproduce on every run; there is no shrinking — the failing inputs
//! are reported as-is via the panic message of the underlying
//! assertion.

use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

pub mod prelude {
    //! Drop-in replacement for `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Per-block configuration; only `cases` is meaningful here.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` iterations.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic SplitMix64 generator driving case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for one `(test, case)` pair.
    pub fn for_case(test_seed: u64, case: u64) -> Self {
        Self {
            state: test_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a hash used to derive a per-test seed from its name.
pub fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A generator of test-case values.
pub trait Strategy {
    /// Generated value type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(((rng.next_u64() as u128 * span as u128) >> 64) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(((rng.next_u64() as u128 * span as u128) >> 64) as $t)
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + rng.next_f64() * (hi - lo)
    }
}

/// Values drawable uniformly from their whole domain via `any`.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only, spread over a wide magnitude range.
        let magnitude = (rng.next_f64() * 64.0) - 32.0;
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * rng.next_f64() * magnitude.exp2()
    }
}

/// Strategy wrapper produced by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Uniform strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy that always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...)` runs
/// `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(__seed, __case as u64);
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)*
                // Bodies may `return Ok(())` to skip a case, as in real
                // proptest, so each case runs in a Result-returning closure.
                let __outcome: ::std::result::Result<(), ::std::string::String> = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__message) = __outcome {
                    panic!("proptest case {__case} failed: {__message}");
                }
            }
        }
    )*};
}

/// Property assertion; panics (no shrinking) when the condition fails.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(n in 2usize..20, x in 5u64..=9) {
            prop_assert!((2..20).contains(&n));
            prop_assert!((5..=9).contains(&x));
        }

        #[test]
        fn any_u64_varies(seed in any::<u64>()) {
            // Not a tautology: mostly checks the macro plumbing compiles
            // and runs; values repeat only with 2^-64 probability.
            prop_assert_eq!(seed, seed);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_case(fnv1a("x"), 3);
        let mut b = TestRng::for_case(fnv1a("x"), 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
