//! Offline stand-in for the `rand_distr` crate.
//!
//! Implements the continuous distributions this workspace samples —
//! [`LogNormal`], [`Pareto`], plus [`Normal`] and [`Exp`] for good
//! measure — on top of the vendored `rand`. Normal deviates come from
//! the Box–Muller transform rather than upstream's ziggurat tables, so
//! streams are deterministic per seed but not bit-compatible with the
//! real crate.

use rand::{Rng, RngCore};

pub use rand::distributions::Distribution;

/// Parameter-validation error shared by every distribution here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Error(&'static str);

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Uniform draw from the open-closed unit interval `(0, 1]`, safe to
/// feed into `ln`.
fn open01<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    1.0 - rng.gen::<f64>()
}

/// Standard normal deviate via Box–Muller.
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u = open01(rng);
    let v = rng.gen::<f64>();
    (-2.0 * u.ln()).sqrt() * (core::f64::consts::TAU * v).cos()
}

/// Normal (Gaussian) distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution; `std_dev` must be finite and
    /// non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error("Normal requires finite mean and std_dev >= 0"));
        }
        Ok(Self { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution; `sigma` must be finite and
    /// non-negative.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err(Error("LogNormal requires finite mu and sigma >= 0"));
        }
        Ok(Self { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Pareto distribution with the given scale (minimum value) and shape
/// `alpha`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// Creates a Pareto distribution; both parameters must be finite
    /// and positive.
    pub fn new(scale: f64, shape: f64) -> Result<Self, Error> {
        if !(scale.is_finite() && shape.is_finite() && scale > 0.0 && shape > 0.0) {
            return Err(Error("Pareto requires scale > 0 and shape > 0"));
        }
        Ok(Self { scale, shape })
    }
}

impl Distribution<f64> for Pareto {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF: scale * U^(-1/shape) for U in (0, 1].
        self.scale * open01(rng).powf(-1.0 / self.shape)
    }
}

/// Exponential distribution with rate `lambda`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates an exponential distribution; `lambda` must be finite
    /// and positive.
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(Error("Exp requires lambda > 0"));
        }
        Ok(Self { lambda })
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        -open01(rng).ln() / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(LogNormal::new(0.0, -1.0).is_err());
        assert!(Pareto::new(0.0, 1.0).is_err());
        assert!(Pareto::new(1.0, 0.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Exp::new(0.0).is_err());
    }

    #[test]
    fn lognormal_mean_is_roughly_right() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = LogNormal::new(1.0, 0.5).unwrap();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        // E[X] = exp(mu + sigma^2 / 2) ≈ 3.08.
        assert!((mean - 3.08).abs() < 0.15, "mean = {mean}");
    }

    #[test]
    fn pareto_respects_its_scale_floor() {
        let mut rng = StdRng::seed_from_u64(12);
        let d = Pareto::new(8.0, 1.5).unwrap();
        assert!((0..10_000).all(|_| d.sample(&mut rng) >= 8.0));
    }
}
