//! Quickstart: build a network, generate traffic, place middleboxes,
//! and inspect the savings.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use tdmd::core::algorithms::gtp::gtp_budgeted;
use tdmd::core::objective::{bandwidth_of, decrement, lemma1_bounds};
use tdmd::core::Instance;
use tdmd::graph::generators::ark::ark_like;
use tdmd::sim::replay;
use tdmd::traffic::{general_workload, WorkloadConfig};

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. A 30-vertex Ark-like WAN with 5 regional clusters.
    let graph = ark_like(30, 5, &mut rng);
    println!(
        "topology: {} vertices, {} directed links",
        graph.node_count(),
        graph.edge_count()
    );

    // 2. CAIDA-like traffic at flow density 0.5, destined to two
    //    gateway vertices.
    let flows = general_workload(
        &graph,
        &[0, 1],
        &WorkloadConfig::with_density(0.5),
        &mut rng,
    );
    println!("workload: {} flows", flows.len());

    // 3. A TDMD instance: traffic-diminishing middleboxes with λ = 0.5
    //    (a WAN optimizer halving traffic) and a budget of k = 6.
    let instance = Instance::new(graph, flows, 0.5, 6).expect("valid instance");
    let baseline = instance.unprocessed_bandwidth();
    println!("unprocessed bandwidth: {baseline:.1}");

    // 4. Place middleboxes with the (1 - 1/e)-approximate greedy.
    let plan = gtp_budgeted(&instance, 6).expect("budget 6 is feasible here");
    println!("GTP deployment: {:?}", plan.vertices());

    // 5. Score it, both analytically (Eq. 1) and by replaying every
    //    flow hop by hop.
    let b = bandwidth_of(&instance, &plan);
    let loads = replay(&instance, &plan);
    let (_, dmax) = lemma1_bounds(&instance);
    println!(
        "bandwidth consumption: {b:.1} (replay agrees: {:.1})",
        loads.total
    );
    println!(
        "saved {:.1} of a possible {:.1} ({:.0}% of the Lemma-1 maximum)",
        decrement(&instance, &plan),
        dmax,
        100.0 * decrement(&instance, &plan) / dmax
    );
    let ((u, v), l) = loads.max_link().expect("traffic exists");
    println!("hottest link: {u} -> {v} carrying {l:.1}");
}
