//! WAN optimizers on an Ark-like measurement WAN (the paper's λ = 0.5
//! case — think Citrix CloudBridge compressing traffic in half), on
//! both the general topology and its tree reduction, comparing all
//! five algorithms like §6.3/§6.4.
//!
//! ```sh
//! cargo run --example wan_optimizer
//! ```

use rand::rngs::StdRng;
use tdmd::core::algorithms::Algorithm;
use tdmd::core::Instance;
use tdmd::graph::generators::ark::ark_like;
use tdmd::graph::traversal::bfs;
use tdmd::graph::{GraphBuilder, RootedTree};
use tdmd::sim::{run_comparison, TrialConfig};
use tdmd::traffic::{general_workload, tree_workload, WorkloadConfig};

/// Tree reduction of a general topology: the BFS tree rooted at the
/// destination (§6.1 reduces the tree topo from the Ark graph).
fn bfs_tree_of(g: &tdmd::graph::DiGraph, root: u32) -> tdmd::graph::DiGraph {
    let res = bfs(g, root);
    let mut b = GraphBuilder::new(g.node_count());
    for v in 0..g.node_count() as u32 {
        let p = res.parent[v as usize];
        if p != u32::MAX {
            b.add_bidirectional(p, v);
        }
    }
    b.build()
}

fn main() {
    let cfg = TrialConfig {
        trials: 5,
        seed: 99,
        ..Default::default()
    };

    // General topology: 30-vertex Ark-like WAN, optimizers halve rates.
    println!("== general Ark-like WAN (lambda = 0.5, k = 10) ==");
    let stats = run_comparison(
        |rng| {
            let g = ark_like(30, 5, rng);
            let flows = general_workload(&g, &[0, 1, 2], &WorkloadConfig::with_density(0.5), rng);
            Instance::new(g, flows, 0.5, 10).expect("valid")
        },
        &Algorithm::general_suite(),
        &cfg,
    );
    for s in &stats {
        println!(
            "  {:<12} bandwidth {:>9.1} ± {:>7.1}   time {:>7.3} ms",
            s.algorithm, s.mean_bandwidth, s.std_bandwidth, s.mean_time_ms
        );
    }

    // Tree reduction: all flows to the root, all five algorithms.
    println!("\n== tree reduction of the same WAN (lambda = 0.5, k = 8) ==");
    let stats = run_comparison(
        |rng: &mut StdRng| {
            let g = bfs_tree_of(&ark_like(30, 5, rng), 0);
            let t = RootedTree::from_digraph(&g, 0).expect("BFS tree is a tree");
            let flows = tree_workload(&g, &t, &WorkloadConfig::with_density(0.5), rng);
            Instance::new(g, flows, 0.5, 8).expect("valid")
        },
        &Algorithm::tree_suite(),
        &cfg,
    );
    for s in &stats {
        println!(
            "  {:<12} bandwidth {:>9.1} ± {:>7.1}   time {:>7.3} ms",
            s.algorithm, s.mean_bandwidth, s.std_bandwidth, s.mean_time_ms
        );
    }
    println!("\nExpected shape (paper §6): DP ≤ HAT ≤ GTP ≤ Best-effort ≤ Random,");
    println!("with DP paying for optimality in execution time.");
}
