//! Trace-driven workloads: synthesize a CAIDA-like packet capture,
//! aggregate it into flows, and drive a placement experiment from the
//! *empirical* flow-size distribution — the pipeline a real trace
//! would go through (§6.1 of the paper uses exactly such a 1-hour
//! trace).
//!
//! ```sh
//! cargo run --release --example trace_pipeline
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use tdmd::core::algorithms::gtp::gtp_budgeted;
use tdmd::core::objective::bandwidth_of;
use tdmd::core::Instance;
use tdmd::graph::generators::ark::ark_like;
use tdmd::traffic::distribution::RateDistribution;
use tdmd::traffic::trace::{aggregate_flows, rates_from_trace, synthesize_trace, TraceConfig};
use tdmd::traffic::{general_workload, WorkloadConfig};

fn main() {
    let mut rng = StdRng::seed_from_u64(77);

    // 1. Capture: a synthetic one-hour trace of 500 flows.
    let cfg = TraceConfig {
        flows: 500,
        ..TraceConfig::default()
    };
    let trace = synthesize_trace(&cfg, &mut rng);
    println!(
        "captured {} packets over {} s",
        trace.len(),
        cfg.duration_us / 1_000_000
    );

    // 2. Aggregate into flows and quantize sizes into rate units.
    let flows = aggregate_flows(&trace);
    let rates = rates_from_trace(&flows, cfg.bytes_per_unit);
    let mean = rates.iter().sum::<u64>() as f64 / rates.len() as f64;
    let max = rates.iter().max().copied().unwrap_or(0);
    println!(
        "aggregated {} flows: mean rate {mean:.2} units, max {max}",
        flows.len()
    );

    // 3. Drive a workload from the empirical distribution.
    let graph = ark_like(30, 5, &mut rng);
    let wl = WorkloadConfig::with_density(0.5)
        .distribution(RateDistribution::Empirical { samples: rates });
    let workload = general_workload(&graph, &[0, 1, 2], &wl, &mut rng);
    println!(
        "generated {} trace-driven flows at density 0.5",
        workload.len()
    );

    // 4. Place middleboxes and report.
    let inst = Instance::new(graph, workload, 0.5, 10).expect("valid instance");
    let plan = gtp_budgeted(&inst, 10).expect("k = 10 feasible");
    println!(
        "GTP: {} middleboxes, bandwidth {:.1} (vs {:.1} unprocessed)",
        plan.len(),
        bandwidth_of(&inst, &plan),
        inst.unprocessed_bandwidth()
    );
}
