//! Dynamic workload: flows arrive and depart; compare a one-shot
//! static placement against replanning at every event (an extension
//! over the paper's static setting — see `tdmd-sim::timeline`).
//!
//! ```sh
//! cargo run --release --example dynamic_placement
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tdmd::core::algorithms::Algorithm;
use tdmd::graph::generators::trees::random_tree;
use tdmd::graph::RootedTree;
use tdmd::sim::timeline::{simulate_replanned, simulate_static, DynamicScenario, FlowSpan};
use tdmd::traffic::{tree_workload, Flow, WorkloadConfig};

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let graph = random_tree(18, &mut rng);
    let tree = RootedTree::from_digraph(&graph, 0).expect("tree");

    // 30 flows with random lifetimes over a 1000-tick horizon.
    let flows = tree_workload(&graph, &tree, &WorkloadConfig::with_count(30), &mut rng);
    let spans: Vec<FlowSpan> = flows
        .into_iter()
        .map(|f| {
            let start = rng.gen_range(0..850u64);
            FlowSpan {
                start_us: start,
                end_us: start + rng.gen_range(80..250u64),
                flow: Flow::new(0, f.rate, f.path),
            }
        })
        .collect();
    let scn = DynamicScenario {
        graph,
        lambda: 0.5,
        k: 5,
        spans,
    };

    let stat = simulate_static(&scn, Algorithm::Dp, 1).expect("static DP feasible");
    let re = simulate_replanned(&scn, Algorithm::Dp, 1).expect("replanned DP feasible");

    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>8}",
        "time", "flows", "static", "replanned", "saved"
    );
    let (mut sum_s, mut sum_r) = (0.0, 0.0);
    for (a, b) in stat.iter().zip(&re) {
        sum_s += a.bandwidth;
        sum_r += b.bandwidth;
        println!(
            "{:>6} {:>8} {:>12.1} {:>12.1} {:>7.1}%",
            a.time_us,
            a.active_flows,
            a.bandwidth,
            b.bandwidth,
            if a.bandwidth > 0.0 {
                100.0 * (1.0 - b.bandwidth / a.bandwidth)
            } else {
                0.0
            }
        );
    }
    println!(
        "\nacross the horizon, replanning at each of the {} events saves {:.1}% bandwidth",
        stat.len(),
        100.0 * (1.0 - sum_r / sum_s.max(1e-12))
    );
}
