//! Reproduces the paper's DP walk-through (Figs. 5–7): prints the
//! `F(v, k)` table and the `P(v, k, b)` tables of the eight-vertex
//! example tree, then recovers the optimal plans for k = 1..4.
//!
//! ```sh
//! cargo run --example dp_walkthrough
//! ```

use tdmd::core::algorithms::dp::{dp_optimal, dp_tables};
use tdmd::core::paper::fig5_instance;

fn cell(x: f64) -> String {
    if x.is_infinite() {
        "∞".to_string()
    } else {
        format!("{x}")
    }
}

fn main() {
    let inst = fig5_instance(4);
    let t = dp_tables(&inst).expect("fig5 is a tree instance");

    println!("Fig. 6 — F(v, k) (rows k = 1..4, columns v1..v8):");
    for k in 1..=4usize {
        print!("  k={k}:");
        for vert in 0..8usize {
            print!(" {:>6}", cell(t.f[vert][k]));
        }
        println!();
    }

    println!("\nFig. 7 — P(v, k, b) tables (achievable b only):");
    for vert in 0..8usize {
        println!("  P(v{}, k, b), tot = {}:", vert + 1, t.tot[vert]);
        for k in 0..=4usize {
            let row: Vec<String> = (0..=t.tot[vert] as usize)
                .filter(|&b| {
                    // Print only b values achievable at some budget to
                    // keep the tables as compact as the paper's.
                    (0..=4).any(|kk| t.p[vert][kk][b].is_finite())
                })
                .map(|b| format!("b={b}: {}", cell(t.p[vert][k][b])))
                .collect();
            println!("    k={k}: {}", row.join("  "));
        }
    }

    println!("\nOptimal plans recovered from the tables:");
    for k in 1..=4usize {
        let sol = dp_optimal(&fig5_instance(k)).expect("feasible for k >= 1");
        let names: Vec<String> = sol
            .deployment
            .vertices()
            .iter()
            .map(|&x| format!("v{}", x + 1))
            .collect();
        println!(
            "  k = {k}: b = {:>5} plan = {{{}}}",
            sol.bandwidth,
            names.join(", ")
        );
    }
    println!("\n(paper: 24 / 16.5 / 13.5 / 12 with plans {{v1}}, {{v2,v6}} or {{v1,v7}}, {{v2,v7,v8}}, {{v4,v5,v7,v8}})");
}
