//! Spam filters in a fat-tree data center (the paper's λ = 0 case,
//! §6.5): every suspicious flow must cross a filter that cuts its
//! traffic entirely; we sweep the filter budget and watch the total
//! bandwidth collapse as filters move toward the edge switches.
//!
//! ```sh
//! cargo run --example spam_filter_dc
//! ```

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tdmd::core::algorithms::best_effort::best_effort;
use tdmd::core::algorithms::gtp::gtp_budgeted;
use tdmd::core::algorithms::random::random_feasible;
use tdmd::core::objective::bandwidth_of;
use tdmd::core::Instance;
use tdmd::graph::generators::fattree::fat_tree;
use tdmd::graph::traversal::bfs_path;
use tdmd::traffic::Flow;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // A k = 4 fat-tree: 4 core, 8 aggregation, 8 edge switches.
    let ft = fat_tree(4);
    println!(
        "fat-tree(4): {} switches ({} core / {} pods)",
        ft.graph.node_count(),
        ft.core.len(),
        ft.k
    );

    // Suspicious flows: every edge switch sprays mail toward a scrubber
    // attached to core switch 0.
    let scrubber = ft.core[0];
    let mut flows = Vec::new();
    for (i, &e) in ft.edge_switches().iter().enumerate() {
        let path = bfs_path(&ft.graph, e, scrubber).expect("fat-tree is connected");
        let rate = *[1u64, 2, 4, 8].choose(&mut rng).expect("non-empty");
        flows.push(Flow::new(i as u32, rate, path));
    }
    println!(
        "{} suspicious flows aimed at core switch {scrubber}",
        flows.len()
    );

    println!(
        "\n{:>4} {:>12} {:>12} {:>12}",
        "k", "GTP", "Best-effort", "Random"
    );
    for k in 1..=8usize {
        let inst = Instance::new(ft.graph.clone(), flows.clone(), 0.0, k)
            .expect("spam filter lambda = 0 is valid");
        let gtp = gtp_budgeted(&inst, k).map(|d| bandwidth_of(&inst, &d));
        let be = best_effort(&inst, k).map(|d| bandwidth_of(&inst, &d));
        let rnd = random_feasible(&inst, k, &mut rng, 2000).map(|d| bandwidth_of(&inst, &d));
        let show = |r: Result<f64, _>| match r {
            Ok(b) => format!("{b:.1}"),
            Err(_) => "infeasible".to_string(),
        };
        println!(
            "{k:>4} {:>12} {:>12} {:>12}",
            show(gtp),
            show(be),
            show(rnd)
        );
    }
    println!(
        "\nWith k = 8 a filter sits on every edge switch: spam dies at the \
         source and the fabric carries zero suspicious bytes."
    );
}
