//! Weighted links and capacitated middleboxes — the two model
//! extensions this repository adds over the paper
//! (`tdmd-core::weighted`, `tdmd-core::capacitated`).
//!
//! A WAN where one access link is a 100×-priced satellite hop:
//! hop-count placement and cost-aware placement choose *different*
//! deployments, and tight per-box capacities force plans to spread.
//!
//! ```sh
//! cargo run --release --example priced_links
//! ```

use tdmd::core::algorithms::gtp::gtp_budgeted;
use tdmd::core::capacitated::gtp_capacitated;
use tdmd::core::weighted::{gtp_weighted, WeightedIndex};
use tdmd::core::Instance;
use tdmd::graph::GraphBuilder;
use tdmd::traffic::Flow;

fn main() {
    // Root 0. Metro chain 0-1-2-3 (cost 1 each). Access tree 0-4 with
    // leaves 5 (cheap) and 6 (satellite, cost 100).
    let mut b = GraphBuilder::new(7);
    b.add_bidirectional_weighted(0, 1, 1);
    b.add_bidirectional_weighted(1, 2, 1);
    b.add_bidirectional_weighted(2, 3, 1);
    b.add_bidirectional_weighted(0, 4, 1);
    b.add_bidirectional_weighted(4, 5, 1);
    b.add_bidirectional_weighted(4, 6, 100);
    let graph = b.build();
    let flows = vec![
        Flow::new(0, 1, vec![3, 2, 1, 0]), // 3 cheap hops
        Flow::new(1, 1, vec![5, 4, 0]),    // 2 cheap hops
        Flow::new(2, 1, vec![6, 4, 0]),    // satellite + 1 hop
    ];
    let inst = Instance::new(graph, flows, 0.5, 2).expect("valid");
    let index = WeightedIndex::new(&inst);

    println!("k = 2, λ = 0.5, one 100-cost satellite uplink (6 -> 4):\n");
    let hop_plan = gtp_budgeted(&inst, 2).expect("feasible");
    let cost_plan = gtp_weighted(&inst, 2).expect("feasible");
    println!(
        "hop-count GTP deploys  {:?}: hop bandwidth {:>4.1}, true cost {:>6.1}",
        hop_plan.vertices(),
        tdmd::core::objective::bandwidth_of(&inst, &hop_plan),
        index.bandwidth_of(&inst, &hop_plan),
    );
    println!(
        "cost-aware GTP deploys {:?}: hop bandwidth {:>4.1}, true cost {:>6.1}",
        cost_plan.vertices(),
        tdmd::core::objective::bandwidth_of(&inst, &cost_plan),
        index.bandwidth_of(&inst, &cost_plan),
    );
    println!(
        "\n(the hop-count plan leaves the satellite hop at full rate: \
              counting links misprices the network)"
    );

    // Capacity: each box may serve at most one flow.
    println!("\nwith per-middlebox capacity 1:");
    for k in 2..=4 {
        match gtp_capacitated(&inst.with_k(k), k, 1) {
            Ok((d, alloc, bandwidth)) => {
                let served = alloc.assigned.iter().flatten().count();
                println!(
                    "  k = {k}: deploy {:?} serving {served} flows -> hop bandwidth {bandwidth:.1}",
                    d.vertices()
                );
            }
            Err(e) => println!("  k = {k}: {e}"),
        }
    }
}
