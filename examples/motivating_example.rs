//! Reproduces the paper's motivating example (Fig. 1 + Table 2): the
//! marginal-decrement table, the GTP walk-through for k = 2 and k = 3,
//! and the optimal bandwidth totals 12 and 8.
//!
//! ```sh
//! cargo run --example motivating_example
//! ```

use tdmd::core::algorithms::gtp::gtp_budgeted;
use tdmd::core::objective::{bandwidth_of, best_hops, marginal_decrement};
use tdmd::core::paper::fig1_instance;
use tdmd::core::Deployment;

/// Pretty 1-based vertex name.
fn v(name: u32) -> String {
    format!("v{}", name + 1)
}

fn main() {
    let inst = fig1_instance(3);
    println!("Fig. 1: 6 switches, 4 flows, lambda = 0.5");
    for f in inst.flows() {
        let path: Vec<String> = f.path.iter().map(|&x| v(x)).collect();
        println!(
            "  f{}: rate {} path {}",
            f.id + 1,
            f.rate,
            path.join(" -> ")
        );
    }

    // Table 2: marginal decrements for the three GTP rounds.
    println!("\nTable 2 (marginal decrements):");
    let rounds: [&[u32]; 3] = [&[], &[4], &[4, 5]];
    for deployed in rounds {
        let d = Deployment::from_vertices(6, deployed.iter().copied());
        let cur: Vec<u32> = best_hops(&inst, &d)
            .into_iter()
            .map(|l| l.unwrap_or(0))
            .collect();
        let label: Vec<String> = deployed.iter().map(|&x| v(x)).collect();
        print!("  d_{{{}}}:", label.join(","));
        for cand in 0..6u32 {
            if deployed.contains(&cand) {
                print!(" {}=—", v(cand));
            } else {
                // `+ 0.0` normalizes the empty-sum's negative zero.
                print!(
                    " {}={}",
                    v(cand),
                    marginal_decrement(&inst, &cur, cand) + 0.0
                );
            }
        }
        println!();
    }

    // GTP with k = 3: the paper's {v4, v5, v6}, total 8.
    let plan3 = gtp_budgeted(&inst, 3).expect("k = 3 is feasible");
    let names: Vec<String> = plan3.vertices().iter().map(|&x| v(x)).collect();
    println!("\nGTP, k = 3: deploy {{{}}}", names.join(", "));
    println!(
        "  total bandwidth = {} (paper: 8)",
        bandwidth_of(&inst, &plan3)
    );

    // GTP with k = 2: the feasibility fallback forces v2 -> {v2, v5}.
    let inst2 = fig1_instance(2);
    let plan2 = gtp_budgeted(&inst2, 2).expect("k = 2 is feasible");
    let names: Vec<String> = plan2.vertices().iter().map(|&x| v(x)).collect();
    println!("GTP, k = 2: deploy {{{}}}", names.join(", "));
    println!(
        "  total bandwidth = {} (paper: 12)",
        bandwidth_of(&inst2, &plan2)
    );
}
