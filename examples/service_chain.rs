//! Service chains with traffic-changing effects (`tdmd-chain`): a
//! firewall (neutral) → WAN optimizer (halves traffic) → decryption
//! (doubles traffic) chain over a tree network, placed with shared
//! instances under a total budget.
//!
//! ```sh
//! cargo run --release --example service_chain
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use tdmd::chain::{chain_at_destinations, chain_gtp, evaluate_chain, ChainSpec};
use tdmd::graph::generators::trees::random_tree;
use tdmd::graph::RootedTree;
use tdmd::traffic::{tree_workload, WorkloadConfig};

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let graph = random_tree(16, &mut rng);
    let tree = RootedTree::from_digraph(&graph, 0).expect("tree");
    let flows = tree_workload(&graph, &tree, &WorkloadConfig::with_count(20), &mut rng);
    let unprocessed: f64 = flows.iter().map(|f| f.unprocessed_bandwidth() as f64).sum();

    let chain = ChainSpec::from_ratios(&[
        ("firewall", 1.0),   // inspects, doesn't change volume
        ("optimizer", 0.5),  // compresses: wants to sit early
        ("decryption", 2.0), // re-inflates: wants to sit last
    ]);
    println!(
        "chain: {} (unprocessed bandwidth {unprocessed:.0})\n",
        chain
            .types()
            .iter()
            .map(|t| format!("{}(λ={})", t.name, t.lambda))
            .collect::<Vec<_>>()
            .join(" -> ")
    );

    let egress = chain_at_destinations(&graph, &flows, &chain);
    let e = evaluate_chain(&flows, &chain, &egress);
    println!(
        "egress baseline: {} instances, bandwidth {:.0}",
        egress.total_instances(),
        e.bandwidth
    );

    println!("\n{:>8} {:>11} {:>10}", "budget", "instances", "bandwidth");
    for budget in [3usize, 6, 9, 12, 16] {
        match chain_gtp(&graph, &flows, &chain, budget) {
            Ok((dep, eval)) => println!(
                "{budget:>8} {:>11} {:>10.0}",
                dep.total_instances(),
                eval.bandwidth
            ),
            Err(err) => println!("{budget:>8} {err:>22}"),
        }
    }
    let (dep, eval) = chain_gtp(&graph, &flows, &chain, 16).expect("budget 16 feasible");
    println!("\nbudget-16 plan:");
    for (t, spec) in chain.types().iter().enumerate() {
        println!("  {:<11} at {:?}", spec.name, dep.instances(t));
    }
    println!(
        "bandwidth {:.0} — the optimizer spreads toward sources while \
         decryption stays at the egress.",
        eval.bandwidth
    );
}
